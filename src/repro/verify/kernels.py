"""Scalar-vs-vectorized kernel equivalence checks for ``locusroute verify``.

The vectorised kernels (:mod:`repro.memsim.columnar`, the prefix-cached
two-bend router, the batched wormhole reservation update) promise
*bit-identical* output to their scalar reference counterparts.  The
hypothesis suites fuzz that promise; this module re-verifies it at
``locusroute verify`` time on workloads derived from the verify run's
own circuit, so a verification sweep also certifies the kernel pair the
simulators are about to dispatch to.

Each check returns ``{"identical": bool, "detail": str}``; any
non-identical check fails the overall verify verdict.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..circuits.model import Circuit
from ..grid.cost_array import CostArray
from ..kernels import use_kernels

__all__ = ["run_kernel_equivalence"]

#: Line sizes swept by the coherence check (the Table 3 sweep's range).
LINE_SIZES = (4, 8, 16, 32)


def _coherence_check(circuit: Circuit, n_procs: int) -> Dict[str, object]:
    """Scalar MSI replay vs columnar replay on a circuit-derived trace."""
    from ..memsim.addressing import AddressMap
    from ..memsim.coherence import simulate_trace
    from ..memsim.columnar import ColumnarTrace, simulate_trace_columnar
    from ..memsim.trace import ReferenceTrace

    # A deterministic trace with real sharing: each wire's pin cells are
    # touched by a processor chosen from the wire index, alternating
    # read bursts with the occasional write burst (the cost-array update
    # pattern the shared memory router produces).
    trace = ReferenceTrace()
    for idx in range(circuit.n_wires):
        wire = circuit.wire(idx)
        cells = np.array(
            [pin.channel * circuit.n_grids + pin.x for pin in wire.pins],
            dtype=np.int64,
        )
        trace.add(float(2 * idx), idx % n_procs, False, cells)
        if idx % 3 == 0:
            trace.add(float(2 * idx + 1), (idx + 1) % n_procs, True, cells)

    columnar = ColumnarTrace.from_trace(trace)
    diverged: List[int] = []
    for ls in LINE_SIZES:
        amap = AddressMap(circuit.n_channels, circuit.n_grids, ls)
        if simulate_trace(trace, n_procs, amap) != simulate_trace_columnar(
            columnar, n_procs, amap
        ):
            diverged.append(ls)
    detail = (
        f"{trace.n_records} bursts x line sizes {LINE_SIZES}"
        if not diverged
        else f"stats diverged at line sizes {diverged}"
    )
    return {"identical": not diverged, "detail": detail}


def _twobend_check(circuit: Circuit, iterations: int) -> Dict[str, object]:
    """Reference vs prefix-cached router through rip-up/reroute churn."""
    from ..route.twobend import route_wire_reference, route_wire_vectorized

    def churn(router) -> Tuple[bytes, Tuple]:
        cost = CostArray(circuit.n_channels, circuit.n_grids)
        paths = {}
        cells: List[Tuple[int, ...]] = []
        for iteration in range(iterations):
            for idx in range(circuit.n_wires):
                if idx in paths:
                    cost.remove_path(paths[idx].flat_cells)
                result = router(cost, circuit.wire(idx), tie_break=iteration % 2)
                cost.apply_path(result.path.flat_cells)
                paths[idx] = result.path
                cells.append(tuple(result.path.flat_cells.tolist()))
        return cost.data.tobytes(), tuple(cells)

    ref = churn(route_wire_reference)
    vec = churn(route_wire_vectorized)
    identical = ref == vec
    detail = (
        f"{circuit.n_wires} wires x {iterations} rip-up/reroute iterations"
        if identical
        else "paths or final cost array diverged"
    )
    return {"identical": identical, "detail": detail}


def _wavefront_check(circuit: Circuit, iterations: int) -> Dict[str, object]:
    """Wave-front batched engine vs the scalar sequential loop.

    Runs the full :class:`SequentialRouter` under both kernel modes —
    the vectorised mode routes each iteration in disjoint-footprint
    waves through one fused evaluation — and demands bit-identical
    paths, work accounting, occupancy, and final cost array.
    """
    from ..route.engine import SequentialRouter

    def run() -> Tuple:
        result = SequentialRouter(circuit, iterations=max(iterations, 2)).run()
        paths = tuple(
            tuple(result.paths[i].flat_cells.tolist())
            for i in sorted(result.paths)
        )
        return (
            result.quality,
            result.work_cells,
            tuple(result.per_iteration_height),
            result.cost.data.tobytes(),
            paths,
        )

    with use_kernels("reference"):
        ref = run()
    with use_kernels("vectorized"):
        vec = run()
    identical = ref == vec
    detail = (
        f"{circuit.n_wires} wires x {max(iterations, 2)} batched iterations"
        if identical
        else "wave-front routing diverged from the sequential loop"
    )
    return {"identical": identical, "detail": detail}


def _event_queue_check(circuit: Circuit) -> Dict[str, object]:
    """Columnar event queue vs the reference heap on a live schedule.

    Drives both queues through the same circuit-derived schedule —
    nested reschedules, cancellations, simultaneous events — and
    compares the fired sequence exactly.
    """
    from ..events.sim import Simulator

    def run() -> Tuple:
        sim = Simulator()
        fired: List[Tuple[float, int]] = []
        handles: List[object] = []

        def fire(tag: int) -> None:
            fired.append((sim.now, tag))
            if tag < 1000 and tag % 4 == 0:
                handles.append(sim.after(0.5, lambda t=tag: fire(t + 1000)))
            if tag % 5 == 0 and handles:
                sim.cancel(handles.pop(0))

        for idx in range(circuit.n_wires):
            wire = circuit.wire(idx)
            t = float(wire.leftmost_pin.x + wire.length_cost() % 7)
            sim.at(t, lambda tag=idx: fire(tag))
        sim.run()
        return tuple(fired)

    with use_kernels("reference"):
        ref = run()
    with use_kernels("vectorized"):
        vec = run()
    identical = ref == vec
    detail = (
        f"{len(ref)} events fired in identical order"
        if identical
        else "event firing order diverged between queue kernels"
    )
    return {"identical": identical, "detail": detail}


def _wormhole_check(n_procs: int) -> Dict[str, object]:
    """Scalar vs batched link reservation over a deterministic burst."""
    from ..events.sim import Simulator
    from ..netsim.message import Message
    from ..netsim.topology import MeshTopology
    from ..netsim.wormhole import WormholeNetwork

    n_messages = 200

    def run() -> Tuple[Tuple[int, float, int], ...]:
        sim = Simulator()
        deliveries: List[object] = []
        net = WormholeNetwork(sim, MeshTopology(n_procs), deliveries.append)
        state = 0x9E3779B97F4A7C15
        for i in range(n_messages):
            state = (state * 6364136223846793005 + 1) & (2**64 - 1)
            src = (state >> 40) % n_procs
            dst = (state >> 20) % n_procs
            net.send(Message(src, dst, 8 + (state >> 4) % 56, payload=i))
        sim.run()
        return tuple(
            (d.message.payload, float(d.arrive_time), d.hops) for d in deliveries
        )

    with use_kernels("reference"):
        ref = run()
    with use_kernels("vectorized"):
        vec = run()
    identical = ref == vec
    detail = (
        f"{n_messages} messages on a {n_procs}-node mesh"
        if identical
        else "delivery times or hop counts diverged"
    )
    return {"identical": identical, "detail": detail}


def run_kernel_equivalence(
    circuit: Circuit, n_procs: int, iterations: int = 2
) -> Dict[str, Dict[str, object]]:
    """Run every kernel equivalence check; label -> {identical, detail}."""
    return {
        "coherence": _coherence_check(circuit, n_procs),
        "twobend": _twobend_check(circuit, iterations),
        "wavefront": _wavefront_check(circuit, iterations),
        "event_queue": _event_queue_check(circuit),
        "wormhole": _wormhole_check(max(n_procs, 9)),
    }
