"""Verification checks for the live (real-core) parallel routers.

Three properties tie the live executions back to the rest of the
verification story (docs/PARALLEL.md):

- **replay**: replaying the durable commit logs must reproduce the final
  cost array bit-exactly (shared memory) or rebuild a canonical truth
  array that equals the union of the final committed paths (message
  passing) — :mod:`repro.parallel.live.commitlog`;
- **quality**: live runs race real cores, so their solutions legitimately
  differ from the sequential reference run to run — but staleness only
  perturbs routing, it does not break it, so quality must stay within
  :data:`LIVE_QUALITY_TOLERANCE` of the sequential reference;
- **determinism**: with one worker process there is no race, so repeated
  runs must be bit-identical.

These checks are scheduling-sensitive (real parallelism!), so they live
behind the same ``repro verify`` umbrella as the simulators' oracles but
assert only schedule-independent properties.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..circuits.model import Circuit
from ..route.quality import QualityReport
from ..route.engine import SequentialRouter

__all__ = ["LIVE_QUALITY_TOLERANCE", "run_live_checks"]

#: Maximum relative deviation of a live run's quality (circuit height and
#: occupancy factor) from the sequential reference.  The paper reports
#: low-single-digit-percent degradation at 8 processors; 35% is a loose
#: envelope that still catches a broken router (a corrupt cost array
#: typically inflates quality by integer factors) without flaking on
#: scheduling noise.
LIVE_QUALITY_TOLERANCE = 0.35


def _within_tolerance(live: QualityReport, ref: QualityReport) -> bool:
    for attr in ("circuit_height", "occupancy_factor"):
        ref_v = getattr(ref, attr)
        live_v = getattr(live, attr)
        if ref_v and abs(live_v - ref_v) / ref_v > LIVE_QUALITY_TOLERANCE:
            return False
    return True


def run_live_checks(
    circuit: Circuit,
    n_procs: int = 2,
    iterations: int = 2,
    start_method: Optional[str] = None,
) -> Dict[str, Dict[str, object]]:
    """Run both live routers and return per-check verdicts.

    Result shape matches the kernel-equivalence checks: ``label -> {"ok",
    "detail"}``, so the verify runner and its renderers treat all checked
    subsystems uniformly.
    """
    from ..parallel.live import run_live_message_passing, run_live_shared_memory

    reference = SequentialRouter(circuit, iterations=iterations).run()
    checks: Dict[str, Dict[str, object]] = {}

    sm = run_live_shared_memory(
        circuit, n_procs=n_procs, iterations=iterations, start_method=start_method
    )
    checks["live-sm-replay"] = {
        "ok": sm.replay_ok,
        "detail": f"{n_procs} procs, commit-log replay "
        + ("bit-exact" if sm.replay_ok else "MISMATCH"),
    }
    checks["live-sm-quality"] = {
        "ok": _within_tolerance(sm.quality, reference.quality),
        "detail": f"live {sm.quality} vs sequential {reference.quality} "
        f"(tolerance {LIVE_QUALITY_TOLERANCE:.0%})",
    }

    mp = run_live_message_passing(
        circuit, n_procs=n_procs, iterations=iterations, start_method=start_method
    )
    checks["live-mp-replay"] = {
        "ok": mp.replay_ok,
        "detail": f"{n_procs} procs, log replay is the committed-path union "
        + ("exactly" if mp.replay_ok else "MISMATCH"),
    }
    checks["live-mp-quality"] = {
        "ok": _within_tolerance(mp.quality, reference.quality),
        "detail": f"live {mp.quality} vs sequential {reference.quality} "
        f"(tolerance {LIVE_QUALITY_TOLERANCE:.0%})",
    }

    solo_a = run_live_shared_memory(
        circuit, n_procs=1, iterations=iterations, start_method=start_method
    )
    solo_b = run_live_shared_memory(
        circuit, n_procs=1, iterations=iterations, start_method=start_method
    )
    identical = (
        solo_a.quality == solo_b.quality
        and solo_a.truth == solo_b.truth
        and solo_a.replay_ok
        and solo_b.replay_ok
    )
    checks["live-sm-determinism"] = {
        "ok": identical,
        "detail": "1-proc runs bit-identical"
        if identical
        else f"1-proc runs DIVERGED ({solo_a.quality} vs {solo_b.quality})",
    }
    return checks
