"""The ``repro verify`` entry point.

Generates a deterministic benchmark circuit, runs the three-way
differential oracle on the paper's default sender-initiated schedule,
then puts the message passing simulator through additional checked runs
under the schedules that exercise the other update machinery — the
mixed §5.1.3 schedule (sender + receiver packets interleaved) and a
blocking receiver-initiated schedule (request/response plus the WAITING
node state).  Every invariant checker in :mod:`repro.verify.invariants`
fires on at least one of these runs.

Finally the scalar-vs-vectorized kernel equivalence checks
(:mod:`repro.verify.kernels`) replay the coherence, two-bend routing and
wormhole reservation kernels in both modes and fail the verdict on any
divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuits.generate import bnre_like
from ..circuits.model import Circuit
from ..updates.schedule import UpdateSchedule
from .oracle import OracleReport, run_differential_oracle
from .violations import RunVerification, VerificationReport

__all__ = ["VerifyRun", "run_verification"]

#: Extra checked message passing runs beyond the oracle's sender-initiated
#: one: (label, schedule) — chosen to cover the request/response and
#: blocking paths the sender-initiated default never takes.
EXTRA_SCHEDULES: Tuple[Tuple[str, UpdateSchedule], ...] = (
    ("mixed", UpdateSchedule.mixed_example()),
    ("receiver-blocking", UpdateSchedule.receiver_initiated(2, 5, blocking=True)),
)


@dataclass
class VerifyRun:
    """Everything one ``repro verify`` invocation produced."""

    circuit: str
    n_procs: int
    iterations: int
    oracle: OracleReport
    #: label -> verification summary for the extra checked MP runs.
    extra_runs: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: label -> scalar-vs-vectorized kernel equivalence results.
    kernel_checks: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: label -> live-execution check results (replay / quality / determinism).
    live_checks: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Merged totals across the oracle and every extra run.
    combined: VerificationReport = field(default_factory=VerificationReport)

    @property
    def ok(self) -> bool:
        return (
            self.oracle.ok
            and self.combined.ok
            and all(c["identical"] for c in self.kernel_checks.values())
            and all(c["ok"] for c in self.live_checks.values())
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "circuit": self.circuit,
            "n_procs": self.n_procs,
            "iterations": self.iterations,
            "oracle": self.oracle.as_dict(),
            "extra_runs": self.extra_runs,
            "kernel_checks": self.kernel_checks,
            "live_checks": self.live_checks,
            "combined": self.combined.as_dict(),
        }

    def render(self) -> str:
        lines = [
            f"repro verify: circuit={self.circuit} n_procs={self.n_procs} "
            f"iterations={self.iterations}",
            self.oracle.render(),
        ]
        for label, summary in self.extra_runs.items():
            status = "OK" if summary.get("ok") else "VIOLATIONS"
            lines.append(
                f"  extra run [{label}]: {status} "
                f"({summary.get('total_checks', 0)} checks, "
                f"{summary.get('total_violations', 0)} violations)"
            )
        for label, check in self.kernel_checks.items():
            status = "IDENTICAL" if check["identical"] else "DIVERGED"
            lines.append(
                f"  kernel equivalence [{label}]: {status} ({check['detail']})"
            )
        for label, check in self.live_checks.items():
            status = "OK" if check["ok"] else "FAIL"
            lines.append(f"  live execution [{label}]: {status} ({check['detail']})")
        lines.append(
            "verdict: " + ("PASS" if self.ok else "FAIL")
            + f" ({self.combined.total_checks} checks, "
            f"{self.combined.total_violations} violations)"
        )
        return "\n".join(lines)


def run_verification(
    quick: bool = False,
    circuit: Optional[Circuit] = None,
    n_procs: Optional[int] = None,
    iterations: Optional[int] = None,
) -> VerifyRun:
    """Run the full verification sweep; see the module docstring.

    ``quick`` shrinks the circuit and processor count to CI scale
    (seconds, not minutes); explicit ``circuit``/``n_procs``/
    ``iterations`` override either preset.
    """
    from ..parallel.mp_sim import run_message_passing

    if circuit is None:
        circuit = bnre_like(n_wires=120) if quick else bnre_like()
    if n_procs is None:
        n_procs = 4 if quick else 16
    if iterations is None:
        iterations = 2 if quick else 3

    oracle = run_differential_oracle(
        circuit, n_procs=n_procs, iterations=iterations
    )
    run = VerifyRun(
        circuit=circuit.name,
        n_procs=n_procs,
        iterations=iterations,
        oracle=oracle,
    )
    run.combined.merge(oracle.verification)

    for label, schedule in EXTRA_SCHEDULES:
        result = run_message_passing(
            circuit,
            schedule,
            n_procs=n_procs,
            iterations=iterations,
            check_invariants=True,
        )
        run_ver = result.meta.get("verification_report")
        if isinstance(run_ver, RunVerification):
            run.extra_runs[label] = run_ver.report.as_dict()
            run.combined.merge(run_ver.report)

    from .kernels import run_kernel_equivalence

    run.kernel_checks = run_kernel_equivalence(
        circuit, n_procs=n_procs, iterations=iterations
    )

    from .live import run_live_checks

    run.live_checks = run_live_checks(circuit, n_procs=2, iterations=iterations)
    return run
