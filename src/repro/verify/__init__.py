"""Consistency verification: invariant checkers and the differential oracle.

The machine-checked statement of the consistency guarantees the paper's
comparison rests on.  Three layers:

- :mod:`repro.verify.invariants` — checkers the simulators run under
  ``check_invariants=True`` (cost-array conservation, MSI coherence
  legality, wormhole flit conservation, delta-replica convergence);
- :mod:`repro.verify.oracle` — the three-way differential oracle between
  the sequential reference, the shared memory simulation, and the
  message passing simulation;
- :mod:`repro.verify.runner` — the ``repro verify`` sweep combining
  both across the update schedules that exercise every code path.

See ``docs/VERIFICATION.md`` for the invariant-to-paper-section map.
"""

from .invariants import (
    PROBE_INTERVAL,
    CoherenceInvariantChecker,
    CostConservationMonitor,
    NetworkInvariantMonitor,
    check_ownership_totality,
    check_replica_convergence,
    check_truth_is_path_union,
    first_differing_cell,
)
from .live import LIVE_QUALITY_TOLERANCE, run_live_checks
from .oracle import Divergence, OracleReport, run_differential_oracle
from .runner import VerifyRun, run_verification
from .violations import InvariantViolation, RunVerification, VerificationReport

__all__ = [
    "PROBE_INTERVAL",
    "CoherenceInvariantChecker",
    "CostConservationMonitor",
    "NetworkInvariantMonitor",
    "check_ownership_totality",
    "check_replica_convergence",
    "check_truth_is_path_union",
    "first_differing_cell",
    "LIVE_QUALITY_TOLERANCE",
    "run_live_checks",
    "Divergence",
    "OracleReport",
    "run_differential_oracle",
    "VerifyRun",
    "run_verification",
    "InvariantViolation",
    "RunVerification",
    "VerificationReport",
]
