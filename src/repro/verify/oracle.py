"""The differential oracle between the two simulators.

Runs the same circuit and schedule through the sequential reference,
the shared memory simulation, and the message passing simulation, and
cross-checks the properties that must agree *regardless of consistency
regime* — the point of the paper is that the two parallel
implementations do the same routing work under different consistency
machinery, so any divergence in these properties is a bug, not a
finding:

- every engine routes exactly the same set of wires;
- every routed path covers all of its wire's pins;
- every engine's final cost array is exactly the union of its final
  paths (conservation — checked per engine, with the first differing
  cell, the earliest wire covering it, and that wire's commit
  timestamp reported on failure);
- the per-engine invariant checkers (coherence legality, flit
  conservation, replica convergence) all pass.

Quality metrics (circuit height, occupancy) legitimately differ between
engines — that divergence is the paper's result, so the oracle reports
them side by side but never fails on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuits.model import Circuit
from ..parallel.mp_sim import run_message_passing
from ..parallel.sm_sim import run_shared_memory
from ..route.engine import SequentialRouter
from ..updates.schedule import UpdateSchedule
from .invariants import check_truth_is_path_union
from .violations import RunVerification, VerificationReport

__all__ = ["Divergence", "OracleReport", "run_differential_oracle"]


@dataclass(frozen=True)
class Divergence:
    """One structured cross-engine divergence (never a bare assert)."""

    kind: str  #: "wire-set", "pin-coverage", "conservation", "invariant"
    engines: Tuple[str, ...]  #: the engine(s) exhibiting the divergence
    message: str
    cell: Optional[Tuple[int, int]] = None
    wire: Optional[int] = None
    event_time_s: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "engines": list(self.engines),
            "message": self.message,
        }
        for name in ("cell", "wire", "event_time_s"):
            value = getattr(self, name)
            if value is not None:
                out[name] = list(value) if isinstance(value, tuple) else value
        return out

    def describe(self) -> str:
        parts = [f"[{self.kind}] {'/'.join(self.engines)}: {self.message}"]
        if self.cell is not None:
            parts.append(f"first differing cell=(c={self.cell[0]}, x={self.cell[1]})")
        if self.wire is not None:
            parts.append(f"wire={self.wire}")
        if self.event_time_s is not None:
            parts.append(f"t={self.event_time_s:.6g}s")
        return "  ".join(parts)


@dataclass
class OracleReport:
    """Outcome of one three-way differential run."""

    quality: Dict[str, Dict[str, object]] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)
    verification: VerificationReport = field(default_factory=VerificationReport)

    @property
    def ok(self) -> bool:
        """True when no divergence was found and all invariants held."""
        return not self.divergences and self.verification.ok

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "quality": self.quality,
            "divergences": [d.as_dict() for d in self.divergences],
            "verification": self.verification.as_dict(),
        }

    def render(self) -> str:
        lines = ["differential oracle: " + ("OK" if self.ok else "DIVERGED")]
        for engine, row in self.quality.items():
            cells = "  ".join(f"{k}={v}" for k, v in row.items())
            lines.append(f"  {engine:16s} {cells}")
        for divergence in self.divergences:
            lines.append(f"  DIVERGENCE {divergence.describe()}")
        lines.append(self.verification.render())
        return "\n".join(lines)


#: Which Divergence.kind a violated invariant maps to.
_KIND_BY_INVARIANT = {
    "wire-set": "wire-set",
    "pin-coverage": "pin-coverage",
    "cost-conservation": "conservation",
}


def run_differential_oracle(
    circuit: Circuit,
    schedule: Optional[UpdateSchedule] = None,
    n_procs: int = 4,
    iterations: int = 2,
    line_size: int = 8,
) -> OracleReport:
    """Run the three engines on *circuit* and cross-check them.

    ``schedule`` defaults to the paper's sender-initiated (2, 10)
    configuration.  Both parallel runs execute with their invariant
    checkers enabled; their violations land in the returned report's
    ``verification`` and make ``ok`` false.
    """
    if schedule is None:
        schedule = UpdateSchedule.sender_initiated(2, 10)
    report = OracleReport()

    seq = SequentialRouter(circuit, iterations=iterations).run()
    sm = run_shared_memory(
        circuit,
        n_procs=n_procs,
        iterations=iterations,
        line_size=line_size,
        check_invariants=True,
    )
    mp = run_message_passing(
        circuit,
        schedule,
        n_procs=n_procs,
        iterations=iterations,
        check_invariants=True,
    )

    engines = {
        "sequential": (seq.paths, seq.cost),
        "shared_memory": (sm.paths, sm.truth),
        "message_passing": (mp.paths, mp.truth),
    }
    report.quality = {
        "sequential": {
            "ckt_height": seq.quality.circuit_height,
            "occupancy": seq.quality.occupancy_factor,
        },
        "shared_memory": {
            "ckt_height": sm.quality.circuit_height,
            "occupancy": sm.quality.occupancy_factor,
            "time_s": round(sm.exec_time_s, 6),
        },
        "message_passing": {
            "ckt_height": mp.quality.circuit_height,
            "occupancy": mp.quality.occupancy_factor,
            "time_s": round(mp.exec_time_s, 6),
        },
    }

    # Fold the parallel runs' invariant reports in (per-commit
    # conservation, coherence legality, flit conservation, replica
    # convergence); each checked-run violation becomes a divergence.
    commit_times_by_engine: Dict[str, Dict[int, float]] = {}
    for engine, result in (("shared_memory", sm), ("message_passing", mp)):
        run_ver = result.meta.get("verification_report")
        if not isinstance(run_ver, RunVerification):
            continue
        commit_times_by_engine[engine] = run_ver.commit_times
        report.verification.merge(run_ver.report)
        for violation in run_ver.report.violations:
            message = violation.message
            if message.startswith(f"{engine}: "):
                message = message[len(engine) + 2 :]
            report.divergences.append(
                Divergence(
                    kind=_KIND_BY_INVARIANT.get(violation.invariant, "invariant"),
                    engines=(engine,),
                    message=message,
                    cell=violation.cell,
                    wire=violation.wire,
                    event_time_s=violation.event_time_s,
                )
            )

    # The oracle's own cross-engine checks accumulate here; violations
    # are mirrored as divergences below.  (The simulators flush their
    # run reports' telemetry themselves; this one is flushed here.)
    own = VerificationReport()

    # 1. identical wire sets everywhere
    expected_wires = set(range(circuit.n_wires))
    for engine, (paths, _) in engines.items():
        missing = expected_wires - set(paths)
        extra = set(paths) - expected_wires
        own.check(
            "wire-set",
            not missing and not extra,
            f"{engine}: routed wire set mismatch "
            f"(missing={sorted(missing)[:5]}, extra={sorted(extra)[:5]})",
            wire=min(missing | extra) if (missing or extra) else None,
        )

    # 2. every path covers its wire's pins
    for engine, (paths, _) in engines.items():
        for wire_idx in sorted(paths):
            cells = set(paths[wire_idx].flat_cells.tolist())
            bad_pin = next(
                (
                    pin
                    for pin in circuit.wire(wire_idx).pins
                    if pin.channel * circuit.n_grids + pin.x not in cells
                ),
                None,
            )
            own.check(
                "pin-coverage",
                bad_pin is None,
                f"{engine}: routed path misses pin"
                + (f" ({bad_pin.channel}, {bad_pin.x})" if bad_pin else ""),
                cell=None if bad_pin is None else (bad_pin.channel, bad_pin.x),
                wire=wire_idx,
            )

    # 3. per-engine conservation: truth == union of final paths
    for engine, (paths, truth) in engines.items():
        check_truth_is_path_union(
            own,
            truth,
            paths,
            commit_times=commit_times_by_engine.get(engine),
            engine=engine,
        )

    for violation in own.violations:
        # The engine name is the message prefix by construction.
        engine, _, message = violation.message.partition(": ")
        report.divergences.append(
            Divergence(
                kind=_KIND_BY_INVARIANT.get(violation.invariant, "invariant"),
                engines=(engine,),
                message=message,
                cell=violation.cell,
                wire=violation.wire,
                event_time_s=violation.event_time_s,
            )
        )
    own.flush_telemetry()
    report.verification.merge(own)
    return report
