-- SQLite schema of the routing service repository (docs/SERVICE.md).
--
-- Two tables, mirroring the file cache's two roles but queryable:
--
--   results: the canonical content-addressed store.  One row per
--            *distinct* configuration ever executed (or imported from
--            the file cache), keyed by the stable_hash fingerprint of
--            everything that determines the output.
--   jobs:    the submission history.  One row per *submission*, so
--            deduplicated submissions of the same configuration each
--            keep their own audit row (status, timestamps, which
--            execution they shared via dedup_of).

CREATE TABLE IF NOT EXISTS results (
    fingerprint    TEXT PRIMARY KEY,   -- stable_hash of the job fingerprint
    kind           TEXT NOT NULL,      -- route | mp | sm | experiment
    config         TEXT NOT NULL,      -- canonical JSON of the job params
    payload        TEXT NOT NULL,      -- JSON result payload
    telemetry      TEXT NOT NULL DEFAULT '{}',  -- counters/spans snapshot
    schema_version INTEGER NOT NULL,   -- repository payload format
    wall_s         REAL,               -- execution wall time (NULL: imported)
    created_unix   REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS jobs (
    job_id         TEXT PRIMARY KEY,
    fingerprint    TEXT NOT NULL,
    kind           TEXT NOT NULL,
    config         TEXT NOT NULL,
    status         TEXT NOT NULL,      -- queued | running | done | failed
    source         TEXT NOT NULL DEFAULT 'executed',
                                       -- executed | repository | file-cache | dedup
    error          TEXT,               -- final error of a failed job
    dedup_of       TEXT,               -- job_id whose execution this shares
    submitted_unix REAL NOT NULL,
    started_unix   REAL,
    finished_unix  REAL
);

CREATE INDEX IF NOT EXISTS idx_jobs_fingerprint ON jobs (fingerprint);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs (status);
CREATE INDEX IF NOT EXISTS idx_results_kind ON results (kind);
