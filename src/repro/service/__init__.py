"""Routing service: job-queue daemon + SQLite result repository.

The architecture step from a one-shot CLI to concurrent many-user
traffic: ``locusroute serve`` runs a daemon that accepts routing /
simulation / experiment jobs over JSON/HTTP, deduplicates identical
work by content-addressed fingerprint, executes on the harness's
salvage process pool, and persists every run into a queryable SQLite
repository that supersedes the file cache as the canonical store
(the file cache stays on as a read-through layer).  See
docs/SERVICE.md.
"""

from .client import ServiceClient
from .daemon import DEFAULT_PORT, RoutingService, ServiceServer, serve
from .jobs import JOB_KINDS, JobSpec, execute_job, job_fingerprint, job_key
from .repository import REPOSITORY_SCHEMA, Repository

__all__ = [
    "DEFAULT_PORT",
    "JOB_KINDS",
    "JobSpec",
    "REPOSITORY_SCHEMA",
    "Repository",
    "RoutingService",
    "ServiceClient",
    "ServiceServer",
    "execute_job",
    "job_fingerprint",
    "job_key",
    "serve",
]
