"""SQLite-backed result repository: the service's canonical store.

The file cache (:mod:`repro.harness.cache`) answers exactly one
question — "have I run this fingerprint before?" — and cannot be
queried, joined, or audited.  The repository keeps that content-addressed
contract (``fingerprint -> payload``) but in SQLite (``schema.sql``), so
the daemon, ``report.py``, and ad-hoc ``sqlite3`` sessions can ask
richer questions: every submission ever made, which ones shared an
execution, how long each kind takes, what failed and why.

Concurrency and corruption policy
---------------------------------
One :class:`Repository` serialises its own statements behind a lock and
opens SQLite in WAL mode with a busy timeout, so the daemon's HTTP
threads and dispatcher thread share one instance safely, and *separate
processes* (a daemon plus a CLI report, or two daemons pointed at the
same file by mistake) contend through SQLite's own file locking.
Result writes are idempotent ``INSERT OR REPLACE`` keyed by
fingerprint — two processes racing to record the same configuration
both succeed and agree.

A corrupted or truncated database degrades to a miss, never an error:
if the file cannot even be opened as a database it is moved aside to
``<name>.corrupt.<n>`` and recreated empty (counted in
``service.repository.recovered``); a row that fails to decode mid-read
is treated as absent (``service.repository.corrupt_rows``).  This is
the same contract the file cache keeps for truncated pickles.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs import telemetry as obs

__all__ = ["Repository", "REPOSITORY_SCHEMA"]

PathLike = Union[str, Path]

#: Bump to invalidate persisted payloads on a format change (mirrors
#: ``CACHE_SCHEMA`` for the file cache; the two version independently).
REPOSITORY_SCHEMA = 1

_SCHEMA_PATH = Path(__file__).with_name("schema.sql")


def _schema_sql() -> str:
    return _SCHEMA_PATH.read_text()


class Repository:
    """The persistent job/result store over one SQLite file.

    Parameters
    ----------
    path:
        Database file (created on first use), or ``":memory:"`` for an
        ephemeral store (tests).
    timeout_s:
        SQLite busy timeout for cross-process lock contention.
    """

    def __init__(self, path: PathLike = ":memory:", timeout_s: float = 30.0) -> None:
        self.path = str(path)
        self._timeout_s = timeout_s
        self._lock = threading.Lock()
        self._conn = self._open()

    # -- connection / recovery -----------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, timeout=self._timeout_s, check_same_thread=False
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_schema_sql())
        conn.commit()
        return conn

    def _open(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            if self.path == ":memory:":
                raise
        # Corrupt/truncated file: move it aside and start fresh — the
        # canonical store must degrade to a miss, not a crash loop.
        target = Path(self.path)
        for n in range(1000):
            aside = target.with_name(f"{target.name}.corrupt.{n}")
            if not aside.exists():
                target.replace(aside)
                break
        obs.incr("service.repository.recovered")
        return self._connect()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- jobs ----------------------------------------------------------
    def add_job(
        self,
        job_id: str,
        fingerprint: str,
        kind: str,
        config: Dict[str, Any],
        status: str = "queued",
        source: str = "executed",
        dedup_of: Optional[str] = None,
    ) -> None:
        """Persist one submission (deduplicated ones included)."""
        now = time.time()
        finished = now if status in ("done", "failed") else None
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs (job_id, fingerprint, kind, config, status,"
                " source, dedup_of, submitted_unix, finished_unix)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    job_id,
                    fingerprint,
                    kind,
                    json.dumps(config, sort_keys=True),
                    status,
                    source,
                    dedup_of,
                    now,
                    finished,
                ),
            )
            self._conn.commit()

    def set_status(
        self,
        job_id: str,
        status: str,
        error: Optional[str] = None,
    ) -> None:
        """Advance a job through queued -> running -> done/failed."""
        now = time.time()
        started = now if status == "running" else None
        finished = now if status in ("done", "failed") else None
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET status = ?,"
                " error = COALESCE(?, error),"
                " started_unix = COALESCE(started_unix, ?),"
                " finished_unix = COALESCE(?, finished_unix)"
                " WHERE job_id = ?",
                (status, error, started, finished, job_id),
            )
            self._conn.commit()

    def get_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One submission row as a plain dict (config decoded), or None."""
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
                ).fetchone()
        except sqlite3.DatabaseError:
            obs.incr("service.repository.corrupt_rows")
            return None
        return self._job_dict(row) if row is not None else None

    def jobs(
        self, status: Optional[str] = None, limit: int = 200
    ) -> List[Dict[str, Any]]:
        """Submission history, newest first (optionally one status)."""
        query = "SELECT * FROM jobs"
        params: List[Any] = []
        if status is not None:
            query += " WHERE status = ?"
            params.append(status)
        query += " ORDER BY submitted_unix DESC, job_id DESC LIMIT ?"
        params.append(limit)
        try:
            with self._lock:
                rows = self._conn.execute(query, params).fetchall()
        except sqlite3.DatabaseError:
            obs.incr("service.repository.corrupt_rows")
            return []
        return [self._job_dict(r) for r in rows]

    def counts(self) -> Dict[str, int]:
        """Job counts by status (the queue-depth view of the history)."""
        try:
            with self._lock:
                rows = self._conn.execute(
                    "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
                ).fetchall()
        except sqlite3.DatabaseError:
            obs.incr("service.repository.corrupt_rows")
            return {}
        return {r["status"]: r["n"] for r in rows}

    @staticmethod
    def _job_dict(row: sqlite3.Row) -> Dict[str, Any]:
        record = dict(row)
        try:
            record["config"] = json.loads(record["config"])
        except (TypeError, ValueError):
            record["config"] = {}
        return record

    # -- results -------------------------------------------------------
    def record_result(
        self,
        fingerprint: str,
        kind: str,
        config: Dict[str, Any],
        payload: Dict[str, Any],
        telemetry: Optional[Dict[str, Any]] = None,
        wall_s: Optional[float] = None,
    ) -> None:
        """Persist one execution's payload (idempotent per fingerprint)."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results (fingerprint, kind, config,"
                " payload, telemetry, schema_version, wall_s, created_unix)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    fingerprint,
                    kind,
                    json.dumps(config, sort_keys=True),
                    json.dumps(payload, sort_keys=True),
                    json.dumps(telemetry or {}, sort_keys=True),
                    REPOSITORY_SCHEMA,
                    wall_s,
                    time.time(),
                ),
            )
            self._conn.commit()

    def get_result(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored result row for a fingerprint, or ``None`` on miss.

        Wrong-schema and undecodable rows are misses (and counted), the
        same treatment the file cache gives stale or truncated entries.
        """
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT * FROM results WHERE fingerprint = ?",
                    (fingerprint,),
                ).fetchone()
        except sqlite3.DatabaseError:
            obs.incr("service.repository.corrupt_rows")
            obs.incr("service.repository.misses")
            return None
        if row is None:
            obs.incr("service.repository.misses")
            return None
        if row["schema_version"] != REPOSITORY_SCHEMA:
            obs.incr("service.repository.misses")
            return None
        try:
            record = {
                "fingerprint": row["fingerprint"],
                "kind": row["kind"],
                "config": json.loads(row["config"]),
                "payload": json.loads(row["payload"]),
                "telemetry": json.loads(row["telemetry"]),
                "wall_s": row["wall_s"],
                "created_unix": row["created_unix"],
            }
        except (TypeError, ValueError):
            obs.incr("service.repository.corrupt_rows")
            obs.incr("service.repository.misses")
            return None
        obs.incr("service.repository.hits")
        return record

    def history(
        self, kind: Optional[str] = None, limit: int = 100
    ) -> List[Dict[str, Any]]:
        """Stored results, newest first, payloads omitted (summary view)."""
        query = (
            "SELECT fingerprint, kind, config, wall_s, created_unix"
            " FROM results"
        )
        params: List[Any] = []
        if kind is not None:
            query += " WHERE kind = ?"
            params.append(kind)
        query += " ORDER BY created_unix DESC LIMIT ?"
        params.append(limit)
        try:
            with self._lock:
                rows = self._conn.execute(query, params).fetchall()
        except sqlite3.DatabaseError:
            obs.incr("service.repository.corrupt_rows")
            return []
        out = []
        for row in rows:
            record = dict(row)
            try:
                record["config"] = json.loads(record["config"])
            except (TypeError, ValueError):
                record["config"] = {}
            out.append(record)
        return out
