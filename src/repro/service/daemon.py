"""The routing service daemon: a job queue over the salvage pool.

``locusroute serve`` turns the batch CLI into a long-running service:
clients submit routing/simulation/experiment jobs over a tiny JSON/HTTP
API (stdlib :class:`ThreadingHTTPServer`, no new dependencies), the
daemon deduplicates identical work, executes on the existing
:func:`~repro.harness.pool.pool_map_salvage` process pool, and persists
every run into the SQLite repository.

Dedup semantics (docs/SERVICE.md)
---------------------------------
Every submission gets its own job row (audit trail), but identical work
executes once:

- a fingerprint already **done** in the repository (or the read-through
  file cache) is answered immediately — job row with status ``done``,
  zero executions;
- a fingerprint already **queued or running** gains a follower job
  (``dedup_of`` = the primary's id) that completes when the shared
  execution does — counted in ``service.jobs.dedup_hits``;
- ``force=True`` skips the completed-result lookup (recompute) but still
  coalesces with an in-flight execution of the same fingerprint: the
  recompute the caller asked for is already happening.

Execution model
---------------
One dispatcher thread drains the queue in batches and hands each batch
to :func:`pool_map_salvage` (``jobs`` workers), so a crashed worker is
respawned and a twice-failed job becomes a *failed row*, never a dead
daemon.  SQLite writes happen only on daemon threads — pool workers
return payloads; the dispatcher persists them.

Telemetry: ``service.jobs.submitted / dedup_hits / repo_hits /
cache_read_through / executed / failed``, ``service.queue.enqueued /
drained``, and a ``service.job`` span per execution (job latency).
"""

from __future__ import annotations

import json
import queue
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlparse

from ..errors import ReproError, ServiceError
from ..harness.cache import ResultCache, jsonify
from ..harness.pool import pool_map_salvage
from ..obs import telemetry as obs
from .jobs import JobSpec, execute_job_in_worker, job_key, read_through
from .repository import Repository

__all__ = ["RoutingService", "ServiceServer", "serve", "DEFAULT_PORT"]

DEFAULT_PORT = 8642


class RoutingService:
    """Job queue + dedup + pool execution + repository persistence.

    Parameters
    ----------
    repository:
        The canonical store (shared with the HTTP layer and reports).
    cache:
        Optional file cache used as a read-through layer and warmed by
        executions.
    jobs:
        Salvage-pool width per batch (``1`` executes in-process, which
        tests use for speed and determinism).
    timeout_s:
        Per-job pool timeout (retried once, then the job fails).
    poll_s:
        Dispatcher queue poll interval.
    paused:
        Start with the dispatcher stopped; :meth:`start` launches it.
        Tests use this to pile up submissions deterministically.
    """

    def __init__(
        self,
        repository: Repository,
        cache: Optional[ResultCache] = None,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.05,
        paused: bool = False,
    ) -> None:
        self.repository = repository
        self.cache = cache
        self.jobs = max(1, jobs)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._queue: "queue.Queue[Tuple[str, JobSpec, str]]" = queue.Queue()
        self._lock = threading.Lock()
        self._inflight: Dict[str, str] = {}  # fingerprint -> primary job id
        self._followers: Dict[str, List[str]] = {}  # fingerprint -> follower ids
        self._stop = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._thread: Optional[threading.Thread] = None
        if not paused:
            self.start()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Launch the dispatcher thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="locusroute-dispatcher", daemon=True
        )
        self._thread.start()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop the dispatcher (current batch finishes first)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None

    def drain(self, timeout_s: float = 60.0) -> bool:
        """Block until the queue is empty and no batch is executing."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._queue.empty() and self._idle.is_set() and not self._inflight:
                return True
            time.sleep(0.01)
        return False

    # -- submission ----------------------------------------------------
    def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        force: bool = False,
    ) -> Dict[str, Any]:
        """Submit one job; returns its submission record.

        The record always carries ``job_id``, ``fingerprint``, ``kind``
        and ``status``; deduplicated submissions add ``dedup_of``.
        """
        spec = JobSpec.from_params(kind, params)
        fingerprint = job_key(spec)
        job_id = uuid.uuid4().hex[:12]
        obs.incr("service.jobs.submitted")

        if not force:
            stored = self.repository.get_result(fingerprint)
            if stored is not None:
                obs.incr("service.jobs.repo_hits")
                self.repository.add_job(
                    job_id, fingerprint, spec.kind, spec.params,
                    status="done", source="repository",
                )
                return self._submission(job_id, fingerprint, spec, "done")
            payload = read_through(spec, self.cache)
            if payload is not None:
                obs.incr("service.jobs.cache_read_through")
                self.repository.record_result(
                    fingerprint, spec.kind, spec.params, payload
                )
                self.repository.add_job(
                    job_id, fingerprint, spec.kind, spec.params,
                    status="done", source="file-cache",
                )
                return self._submission(job_id, fingerprint, spec, "done")

        with self._lock:
            primary = self._inflight.get(fingerprint)
            if primary is not None:
                obs.incr("service.jobs.dedup_hits")
                self._followers.setdefault(fingerprint, []).append(job_id)
                self.repository.add_job(
                    job_id, fingerprint, spec.kind, spec.params,
                    status="queued", source="dedup", dedup_of=primary,
                )
                return self._submission(
                    job_id, fingerprint, spec, "queued", dedup_of=primary
                )
            self._inflight[fingerprint] = job_id
        self.repository.add_job(
            job_id, fingerprint, spec.kind, spec.params, status="queued"
        )
        self._queue.put((job_id, spec, fingerprint))
        obs.incr("service.queue.enqueued")
        return self._submission(job_id, fingerprint, spec, "queued")

    @staticmethod
    def _submission(
        job_id: str,
        fingerprint: str,
        spec: JobSpec,
        status: str,
        dedup_of: Optional[str] = None,
    ) -> Dict[str, Any]:
        record = {
            "job_id": job_id,
            "fingerprint": fingerprint,
            "kind": spec.kind,
            "status": status,
        }
        if dedup_of is not None:
            record["dedup_of"] = dedup_of
        return record

    # -- queries -------------------------------------------------------
    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        return self.repository.get_job(job_id)

    def result(self, job_id: str) -> Tuple[Optional[Dict[str, Any]], str]:
        """(result row or None, state) for a job id.

        States: ``unknown``, ``pending``, ``failed``, ``done``.
        """
        job = self.repository.get_job(job_id)
        if job is None:
            return None, "unknown"
        if job["status"] == "failed":
            return None, "failed"
        if job["status"] != "done":
            return None, "pending"
        stored = self.repository.get_result(job["fingerprint"])
        if stored is None:  # done job whose row was lost to corruption
            return None, "failed"
        return stored, "done"

    def stats(self) -> Dict[str, Any]:
        """Queue depth, in-flight map size, counters, repository counts."""
        counters = {
            name: value
            for name, value in dict(obs.get_telemetry().counters).items()
            if name.startswith("service.")
        }
        with self._lock:
            inflight = len(self._inflight)
        return {
            "queue_depth": self._queue.qsize(),
            "inflight": inflight,
            "pool_jobs": self.jobs,
            "counters": counters,
            "repository": {
                "path": self.repository.path,
                "jobs": self.repository.counts(),
            },
        }

    # -- dispatcher ----------------------------------------------------
    def _take_batch(self) -> List[Tuple[str, JobSpec, str]]:
        """Block briefly for the first job, then drain what's queued."""
        try:
            first = self._queue.get(timeout=self.poll_s)
        except queue.Empty:
            return []
        batch = [first]
        while True:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                return batch

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            batch = self._take_batch()
            if not batch:
                continue
            self._idle.clear()
            try:
                self._run_batch(batch)
            finally:
                self._idle.set()

    def _run_batch(self, batch: List[Tuple[str, JobSpec, str]]) -> None:
        obs.incr("service.queue.drained", len(batch))
        for job_id, _spec, fingerprint in batch:
            self.repository.set_status(job_id, "running")
            for follower in self._followers_of(fingerprint):
                self.repository.set_status(follower, "running")
        cache_dir = str(self.cache.directory) if self.cache is not None else None
        report = pool_map_salvage(
            execute_job_in_worker,
            [(spec, cache_dir) for _jid, spec, _fp in batch],
            jobs=self.jobs,
            timeout_s=self.timeout_s,
            label="service job",
        )
        failures = {f.index: f for f in report.failures}
        for i, (job_id, spec, fingerprint) in enumerate(batch):
            outcome = report.results[i]
            if outcome is None:
                error = failures[i].describe("job") if i in failures else "lost"
                obs.incr("service.jobs.failed")
                self._finish(job_id, fingerprint, "failed", error=error)
                continue
            payload, telemetry, wall = outcome
            obs.get_telemetry().merge(telemetry)
            obs.incr("service.jobs.executed")
            obs.record_span("service.job", wall, 0.0)
            self.repository.record_result(
                fingerprint, spec.kind, spec.params,
                jsonify(payload), telemetry=jsonify(telemetry), wall_s=wall,
            )
            self._finish(job_id, fingerprint, "done")

    def _followers_of(self, fingerprint: str) -> List[str]:
        with self._lock:
            return list(self._followers.get(fingerprint, ()))

    def _finish(
        self, job_id: str, fingerprint: str, status: str, error: Optional[str] = None
    ) -> None:
        self.repository.set_status(job_id, status, error=error)
        with self._lock:
            followers = self._followers.pop(fingerprint, [])
            self._inflight.pop(fingerprint, None)
        for follower in followers:
            self.repository.set_status(follower, status, error=error)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """JSON/HTTP facade over :class:`RoutingService`.

    ========  =======================  =======================================
    method    path                     meaning
    ========  =======================  =======================================
    GET       /health                  liveness probe
    GET       /stats                   queue depth, counters, repository counts
    GET       /jobs                    submission history (?status=, ?limit=)
    GET       /jobs/<id>               one job's status record
    GET       /jobs/<id>/result        payload (409 while pending, 500 failed)
    POST      /jobs                    submit {"kind": ..., "params": {...}}
    ========  =======================  =======================================
    """

    server_version = "locusroute-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the daemon's stdout belongs to the operator, not access logs

    @property
    def service(self) -> RoutingService:
        return self.server.service  # type: ignore[attr-defined]

    def _send(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, indent=1).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["health"]:
            self._send(200, {"ok": True})
        elif parts == ["stats"]:
            self._send(200, self.service.stats())
        elif parts == ["jobs"]:
            params = dict(
                pair.split("=", 1) for pair in parsed.query.split("&") if "=" in pair
            )
            limit = int(params.get("limit", 200))
            status = params.get("status")
            self._send(200, {"jobs": self.service.repository.jobs(status, limit)})
        elif len(parts) == 2 and parts[0] == "jobs":
            record = self.service.status(parts[1])
            if record is None:
                self._send(404, {"error": f"unknown job {parts[1]!r}"})
            else:
                self._send(200, record)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            stored, state = self.service.result(parts[1])
            if state == "unknown":
                self._send(404, {"error": f"unknown job {parts[1]!r}"})
            elif state == "pending":
                self._send(409, {"status": "pending"})
            elif state == "failed":
                job = self.service.status(parts[1]) or {}
                self._send(500, {"error": job.get("error") or "job failed"})
            else:
                self._send(200, {"status": "done", **stored})
        else:
            self._send(404, {"error": f"no such endpoint {parsed.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        if parsed.path.rstrip("/") != "/jobs":
            self._send(404, {"error": f"no such endpoint {parsed.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict):
                raise ValueError("body must be a JSON object")
        except ValueError as exc:
            self._send(400, {"error": f"bad request body: {exc}"})
            return
        try:
            record = self.service.submit(
                str(body.get("kind", "")),
                body.get("params") or {},
                force=bool(body.get("force", False)),
            )
        except ReproError as exc:
            self._send(400, {"error": str(exc)})
            return
        self._send(200 if record["status"] == "done" else 202, record)


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service instance for handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: RoutingService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    db: str = ".locusroute_service.sqlite",
    cache_dir: Optional[str] = ".locusroute_cache",
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    paused: bool = False,
) -> ServiceServer:
    """Build a ready-to-run server (pass ``port=0`` for an OS-picked port).

    The caller owns the loop: ``server.serve_forever()`` to run,
    ``server.shutdown()`` + ``server.service.stop()`` +
    ``server.service.repository.close()`` to tear down.
    """
    repository = Repository(db)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    service = RoutingService(
        repository, cache=cache, jobs=jobs, timeout_s=timeout_s, paused=paused
    )
    return ServiceServer((host, port), service)
