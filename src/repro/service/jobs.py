"""Job specifications for the routing service.

A *job* is one unit of work a client can submit to the daemon: a
sequential routing run (``route``), one simulated parallel run
(``mp`` / ``sm``, exactly a :class:`~repro.harness.simjobs.SimConfig`
row), or a whole paper experiment (``experiment``).  Each job is
identified by the same content-addressed fingerprint discipline as the
file cache — :func:`job_key` hashes every input that determines the
output, including the package source digest — so the repository, the
in-flight dedup map, and the file cache all agree on what "the same
job" means.

Cache layering (docs/SERVICE.md):

1. the SQLite repository is canonical — a hit there never re-executes;
2. the file cache (:class:`~repro.harness.cache.ResultCache`) stays as a
   read-through layer: a repository miss that hits the file cache is
   converted to a payload, persisted into the repository, and served
   (:func:`read_through`);
3. a miss in both executes (:func:`execute_job`), which itself runs
   through the file cache for ``mp``/``sm``/``experiment`` kinds so the
   two stores warm each other.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import ServiceError
from ..harness import simjobs
from ..harness.cache import (
    ResultCache,
    code_fingerprint,
    jsonify,
    stable_hash,
)
from ..harness.experiments import EXPERIMENTS, run_experiment
from ..harness.runner import (
    experiment_cache_key,
    payload_to_result,
    result_to_payload,
)
from ..harness.simjobs import SimConfig, sim_fingerprint, sim_key
from ..obs import telemetry as obs
from ..route import SequentialRouter
from ..updates import UpdateSchedule

__all__ = [
    "JOB_KINDS",
    "JobSpec",
    "job_fingerprint",
    "job_key",
    "execute_job",
    "execute_job_in_worker",
    "read_through",
    "route_payload",
]

JOB_KINDS = ("route", "mp", "sm", "experiment")

#: Per-kind parameter schema: name -> default.  ``...`` marks required.
_COMMON: Dict[str, Any] = {"which": "bnrE", "n_wires": None, "quick": False}
_PARAM_SCHEMA: Dict[str, Dict[str, Any]] = {
    "route": {**_COMMON, "iterations": 3},
    "mp": {
        **_COMMON,
        "iterations": 3,
        "n_procs": 16,
        "send_loc": None,
        "send_rmt": None,
        "req_loc": None,
        "req_rmt": None,
        "blocking": False,
    },
    "sm": {
        **_COMMON,
        "iterations": 3,
        "n_procs": 16,
        "line_size": 8,
        "protocol": "invalidate",
    },
    "experiment": {"exp_id": ..., "quick": False},
}


@dataclass(frozen=True)
class JobSpec:
    """One validated, canonicalised job (picklable for the pool)."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_params(cls, kind: str, params: Optional[Dict[str, Any]] = None) -> "JobSpec":
        """Validate *params* against the kind's schema and fill defaults.

        Defaults are filled in eagerly so two submissions that spell the
        same configuration differently (one relying on defaults, one
        explicit) canonicalise to the same fingerprint.
        """
        if kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {kind!r} (valid: {', '.join(JOB_KINDS)})"
            )
        schema = _PARAM_SCHEMA[kind]
        params = dict(params or {})
        unknown = sorted(set(params) - set(schema))
        if unknown:
            raise ServiceError(
                f"unknown parameter(s) for {kind} jobs: {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(schema))})"
            )
        canonical: Dict[str, Any] = {}
        for name, default in schema.items():
            if name in params:
                canonical[name] = params[name]
            elif default is ...:
                raise ServiceError(f"{kind} jobs require the {name!r} parameter")
            else:
                canonical[name] = default
        spec = cls(kind=kind, params=canonical)
        spec._validate()
        return spec

    def _validate(self) -> None:
        if self.kind == "experiment":
            exp_id = str(self.params["exp_id"]).upper()
            if exp_id not in EXPERIMENTS:
                raise ServiceError(
                    f"unknown experiment id {self.params['exp_id']!r} "
                    f"(valid: {', '.join(sorted(EXPERIMENTS))})"
                )
            self.params["exp_id"] = exp_id
            return
        if self.params["which"] not in ("bnrE", "MDC"):
            raise ServiceError(
                f"unknown circuit {self.params['which']!r} (use bnrE or MDC)"
            )
        if self.kind in ("mp", "sm"):
            # Build the SimConfig now so schedule/parameter errors surface
            # at submission time, not inside a pool worker.
            self.sim_config()

    # -- derived forms -------------------------------------------------
    def schedule(self) -> Optional[UpdateSchedule]:
        """The mp job's update schedule (None for other kinds)."""
        if self.kind != "mp":
            return None
        p = self.params
        return UpdateSchedule(
            send_loc_every=p["send_loc"],
            send_rmt_every=p["send_rmt"],
            req_loc_every=p["req_loc"],
            req_rmt_every=p["req_rmt"],
            blocking=bool(p["blocking"]),
        )

    def sim_config(self) -> SimConfig:
        """The equivalent simulation row (mp/sm kinds only)."""
        if self.kind not in ("mp", "sm"):
            raise ServiceError(f"{self.kind} jobs have no SimConfig form")
        p = self.params
        if self.kind == "mp":
            return SimConfig(
                kind="mp",
                which=p["which"],
                quick=bool(p["quick"]),
                n_wires=p["n_wires"],
                schedule=self.schedule(),
                n_procs=int(p["n_procs"]),
                iterations=int(p["iterations"]),
            )
        return SimConfig(
            kind="sm",
            which=p["which"],
            quick=bool(p["quick"]),
            n_wires=p["n_wires"],
            n_procs=int(p["n_procs"]),
            iterations=int(p["iterations"]),
            line_size=int(p["line_size"]),
            protocol=p["protocol"],
        )


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def job_fingerprint(spec: JobSpec) -> Dict[str, Any]:
    """Everything that determines this job's result, as a plain dict."""
    if spec.kind in ("mp", "sm"):
        # Reuse the sim-row fingerprint verbatim so a service job and the
        # harness row cache agree cell for cell.
        return {"unit": "service-job", "sim": sim_fingerprint(spec.sim_config())}
    if spec.kind == "experiment":
        return {
            "unit": "service-job",
            "kind": "experiment",
            "experiment_key": experiment_cache_key(
                spec.params["exp_id"], bool(spec.params["quick"])
            ),
        }
    circuit = simjobs._named_circuit(
        spec.params["which"], bool(spec.params["quick"]), spec.params["n_wires"]
    )
    return {
        "unit": "service-job",
        "kind": "route",
        "circuit": simjobs.circuit_fingerprint(circuit),
        "iterations": int(spec.params["iterations"]),
        "code": code_fingerprint(),
    }


def job_key(spec: JobSpec) -> str:
    """The content-addressed identity of one job."""
    return stable_hash(job_fingerprint(spec))


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def route_payload(result) -> Dict[str, Any]:
    """JSON payload of a sequential routing run (shared with the CLI)."""
    return {
        "kind": "route",
        "quality": result.quality.as_dict(),
        "per_iteration_height": list(result.per_iteration_height),
        "work_cells": int(result.work_cells),
    }


def execute_job(spec: JobSpec, cache: Optional[ResultCache] = None) -> Dict[str, Any]:
    """Run one job to completion and return its JSON-safe payload.

    ``mp``/``sm`` rows and experiments run *through* the file cache when
    one is given, so warm configurations come back without simulating and
    fresh ones warm the cache for future CLI runs.
    """
    if spec.kind == "route":
        circuit = simjobs._named_circuit(
            spec.params["which"], bool(spec.params["quick"]), spec.params["n_wires"]
        )
        result = SequentialRouter(
            circuit, iterations=int(spec.params["iterations"])
        ).run()
        return route_payload(result)
    if spec.kind in ("mp", "sm"):
        run = simjobs.run_sim_configs([spec.sim_config()], jobs=1, cache=cache)[0]
        return jsonify({"kind": spec.kind, **run.summary_dict()})
    # experiment
    exp_id, quick = spec.params["exp_id"], bool(spec.params["quick"])
    result = None
    if cache is not None:
        cached = cache.get_experiment(experiment_cache_key(exp_id, quick))
        if cached is not None:
            result = payload_to_result(cached)
    if result is None:
        result = run_experiment(exp_id, quick=quick)
        if cache is not None:
            cache.put_experiment(
                experiment_cache_key(exp_id, quick), result_to_payload(result)
            )
    return jsonify(
        {"kind": "experiment", **result_to_payload(result), "passed": result.passed}
    )


def execute_job_in_worker(
    item: Tuple[JobSpec, Optional[str]],
) -> Tuple[Dict[str, Any], Dict[str, Any], float]:
    """Pool-worker entry: run one job, report payload + telemetry + wall.

    In a real pool worker the process-global telemetry is reset first
    (as in the harness pools) so the returned snapshot is exactly this
    job's delta for the daemon to merge.  When the salvage pool degrades
    to in-process execution (``jobs=1``, single item, serial retry) the
    increments land directly in the daemon's own telemetry, so resetting
    would wipe the daemon's counters and merging would double-count —
    an empty snapshot is returned instead.
    """
    spec, cache_dir = item
    in_worker = multiprocessing.parent_process() is not None
    if in_worker:
        obs.reset()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    wall0 = time.perf_counter()
    payload = execute_job(spec, cache)
    wall = time.perf_counter() - wall0
    return payload, obs.snapshot() if in_worker else {}, wall


# ----------------------------------------------------------------------
# file-cache read-through
# ----------------------------------------------------------------------
def read_through(spec: JobSpec, cache: Optional[ResultCache]) -> Optional[Dict[str, Any]]:
    """Serve a job from the file cache without executing, if possible.

    Returns the payload on a hit, ``None`` on a miss (or for ``route``
    jobs, which have no file-cache namespace).  The caller persists hits
    into the repository, promoting legacy cache entries into the
    canonical store as they are touched.
    """
    if cache is None:
        return None
    if spec.kind in ("mp", "sm"):
        hit = cache.get_sim(sim_key(spec.sim_config()))
        if hit is None:
            return None
        return jsonify({"kind": spec.kind, **hit.summary_dict()})
    if spec.kind == "experiment":
        cached = cache.get_experiment(
            experiment_cache_key(spec.params["exp_id"], bool(spec.params["quick"]))
        )
        if cached is None:
            return None
        result = payload_to_result(cached)
        return jsonify(
            {"kind": "experiment", **result_to_payload(result), "passed": result.passed}
        )
    return None
