"""Stdlib HTTP client for the routing service daemon.

Used by the ``locusroute jobs`` subcommands, the CI service smoke, and
any script that wants to talk to a running ``locusroute serve`` without
extra dependencies.  All methods return the server's decoded JSON; HTTP
errors surface as :class:`~repro.errors.ServiceError` carrying the
server's ``error`` message when one was sent.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from ..errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Client for one service base URL (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(self, url: str = "http://127.0.0.1:8642", timeout_s: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------
    def _request(
        self,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok_statuses: tuple = (200, 202),
    ) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                payload = json.loads(response.read().decode("utf-8"))
                status = response.status
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {"error": str(exc)}
            status = exc.code
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach routing service at {self.url}: {exc}"
            ) from exc
        if status not in ok_statuses:
            raise ServiceError(
                payload.get("error", f"service returned HTTP {status}")
            )
        return payload

    # -- API -----------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("/stats")

    def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        force: bool = False,
    ) -> Dict[str, Any]:
        """Submit a job; returns {job_id, fingerprint, kind, status, ...}."""
        return self._request(
            "/jobs", body={"kind": kind, "params": params or {}, "force": force}
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request(f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The persisted result row of a finished job (409 -> error)."""
        return self._request(f"/jobs/{job_id}/result")

    def list_jobs(
        self, status: Optional[str] = None, limit: int = 200
    ) -> List[Dict[str, Any]]:
        query = f"?limit={limit}" + (f"&status={status}" if status else "")
        return self._request(f"/jobs{query}")["jobs"]

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job reaches ``done``/``failed``; returns its record."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.status(job_id)
            if record["status"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['status']} after {timeout_s}s"
                )
            time.sleep(poll_s)

    def wait_healthy(self, timeout_s: float = 30.0, poll_s: float = 0.2) -> None:
        """Block until /health answers (daemon startup)."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                self.health()
                return
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_s)
