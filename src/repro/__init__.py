"""repro — reproduction of Martonosi & Gupta (ICPP 1989).

*"Tradeoffs in Message Passing and Shared Memory Implementations of a
Standard Cell Router"*: the LocusRoute standard cell router mapped to a
message passing machine (CBS-style simulation with explicit cost-array
update strategies) and to a shared memory machine (Tango-style traces
through a write-back-invalidate coherence simulator), compared on network
traffic, execution time, and solution quality.

Quickstart
----------
>>> from repro import bnre_like, UpdateSchedule, run_message_passing
>>> circuit = bnre_like()
>>> result = run_message_passing(circuit, UpdateSchedule.sender_initiated(2, 10))
>>> result.quality.circuit_height  # doctest: +SKIP
>>> result.network.mbytes          # doctest: +SKIP

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table.
"""

from .assign import (
    Assignment,
    DistributedLoop,
    RoundRobinAssigner,
    ThresholdCostAssigner,
    fully_local,
    load_report,
)
from .circuits import (
    Circuit,
    Pin,
    SyntheticCircuitConfig,
    Wire,
    bnre_like,
    generate,
    mdc_like,
    tiny_test_circuit,
)
from .grid import BBox, CostArray, DeltaArray, RegionMap, proc_grid_shape
from .parallel import (
    CostModel,
    DEFAULT_COST_MODEL,
    ParallelRunResult,
    run_message_passing,
    run_shared_memory,
)
from .route import (
    LocalityReport,
    QualityReport,
    RoutePath,
    SequentialRouter,
    circuit_height,
    locality_measure,
    route_wire,
)
from .updates import UpdateKind, UpdateSchedule

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # circuits
    "Pin",
    "Wire",
    "Circuit",
    "SyntheticCircuitConfig",
    "generate",
    "bnre_like",
    "mdc_like",
    "tiny_test_circuit",
    # grid
    "BBox",
    "CostArray",
    "DeltaArray",
    "RegionMap",
    "proc_grid_shape",
    # routing
    "RoutePath",
    "SequentialRouter",
    "route_wire",
    "QualityReport",
    "circuit_height",
    "LocalityReport",
    "locality_measure",
    # assignment
    "Assignment",
    "RoundRobinAssigner",
    "ThresholdCostAssigner",
    "fully_local",
    "DistributedLoop",
    "load_report",
    # updates
    "UpdateKind",
    "UpdateSchedule",
    # parallel runs
    "run_message_passing",
    "run_shared_memory",
    "ParallelRunResult",
    "CostModel",
    "DEFAULT_COST_MODEL",
]
