"""Phase timing and profiling hooks for the performance harness.

Three layers, from cheapest to heaviest:

- :class:`PhaseTimer` — named wall/CPU phase timers for coarse breakdowns
  (circuit build vs simulation vs coherence sweep).  Phases also report
  into the global :mod:`~repro.obs.telemetry` spans as ``profile.<name>``
  so they merge across worker processes like any other span.
- :func:`hot_counters` — the telemetry counters the vectorised kernels
  maintain on their hot paths (events replayed, columnar events, messages
  switched), snapshotted as a plain dict for reports.
- :func:`profile_call` — a :mod:`cProfile` hook around an arbitrary
  callable, returning the callable's result together with the formatted
  top-N table.  This is the heavy option: the profiler inflates
  Python-call-dense code (the reference kernels) far more than
  NumPy-dense code (the vectorised kernels), so use the wall-clock
  numbers from :class:`PhaseTimer` or ``benchmarks/bench_perf_suite.py``
  when comparing kernel modes, and ``profile_call`` only to find *where*
  time goes inside one mode.

Used by the ``locusroute profile`` subcommand and the performance
regression suite (``benchmarks/bench_perf_suite.py``).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Tuple

from . import telemetry

__all__ = [
    "PhaseRecord",
    "PhaseTimer",
    "hot_counters",
    "memory_snapshot",
    "profile_call",
    "record_peak_memory",
]

#: Counter names (prefixes) the kernels maintain on their hot paths.
HOT_COUNTER_PREFIXES = ("sim.", "net.", "route.", "coherence.", "events.", "mem.")


def memory_snapshot() -> Dict[str, int]:
    """Current and peak RSS of this process, in bytes.

    Reads ``/proc/self/status`` (``VmRSS`` / ``VmHWM``) where available
    and falls back to :func:`resource.getrusage` elsewhere, so it works
    in every environment the harness runs in without optional deps.
    When :mod:`tracemalloc` is tracing, the traced current/peak byte
    counts are included as well (Python-heap only, much smaller than
    RSS but attributable to allocation sites).
    """
    rss = hwm = 0
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    rss = int(line.split()[1]) * 1024
                elif line.startswith("VmHWM:"):
                    hwm = int(line.split()[1]) * 1024
    except OSError:
        pass
    if not hwm:
        try:
            import resource

            ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # ru_maxrss is kilobytes on Linux, bytes on macOS.
            hwm = int(ru_maxrss) * (1 if sys.platform == "darwin" else 1024)
        except (ImportError, ValueError):
            hwm = 0
        rss = rss or hwm
    snap = {"rss_bytes": rss, "peak_rss_bytes": hwm}
    if tracemalloc.is_tracing():
        traced, traced_peak = tracemalloc.get_traced_memory()
        snap["traced_bytes"] = traced
        snap["traced_peak_bytes"] = traced_peak
    return snap


_reported_peak = 0


def record_peak_memory() -> Dict[str, int]:
    """Snapshot memory and publish the peak to telemetry.

    The ``mem.peak_rss_bytes`` counter is raised monotonically to this
    process's high-water mark (repeat calls only add the growth since
    the last call), so merging worker snapshots sums per-process peaks
    into a total-footprint figure.  Returns the snapshot.
    """
    global _reported_peak
    snap = memory_snapshot()
    peak = snap["peak_rss_bytes"]
    if peak > _reported_peak:
        telemetry.incr("mem.peak_rss_bytes", peak - _reported_peak)
        _reported_peak = peak
    return snap


@dataclass(frozen=True)
class PhaseRecord:
    """One completed phase: name plus wall and CPU seconds.

    ``peak_rss_bytes`` is the process high-water mark observed at the
    end of the phase (0 when the timer was built without
    ``track_memory``).
    """

    name: str
    wall_s: float
    cpu_s: float
    peak_rss_bytes: int = 0


class PhaseTimer:
    """Ordered wall/CPU timing of named phases.

    ::

        timer = PhaseTimer()
        with timer.phase("build"):
            circuit = bnre_like()
        with timer.phase("simulate"):
            run_shared_memory(circuit)
        print(timer.render())

    Phases may repeat; each entry is kept (the report shows every
    occurrence in order, which makes per-iteration drift visible).
    """

    def __init__(self, track_memory: bool = False) -> None:
        self.records: List[PhaseRecord] = []
        self.track_memory = track_memory

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; also reported as telemetry span ``profile.<name>``.

        With ``track_memory`` the phase also snapshots the process RSS
        high-water mark on exit and raises the ``mem.peak_rss_bytes``
        telemetry counter (see :func:`record_peak_memory`).
        """
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            peak = record_peak_memory()["peak_rss_bytes"] if self.track_memory else 0
            self.records.append(PhaseRecord(name, wall, cpu, peak))
            telemetry.record_span(f"profile.{name}", wall, cpu)

    @property
    def total_wall_s(self) -> float:
        """Sum of all recorded phases' wall time."""
        return sum(r.wall_s for r in self.records)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary (ordered phase list plus the total)."""
        phases: List[Dict[str, object]] = []
        for r in self.records:
            entry: Dict[str, object] = {
                "name": r.name,
                "wall_s": r.wall_s,
                "cpu_s": r.cpu_s,
            }
            if r.peak_rss_bytes:
                entry["peak_rss_bytes"] = r.peak_rss_bytes
            phases.append(entry)
        out: Dict[str, object] = {
            "phases": phases,
            "total_wall_s": self.total_wall_s,
        }
        peak = max((r.peak_rss_bytes for r in self.records), default=0)
        if peak:
            out["peak_rss_bytes"] = peak
        return out

    def render(self) -> str:
        """Fixed-width phase table with share-of-total percentages."""
        total = self.total_wall_s
        with_mem = any(r.peak_rss_bytes for r in self.records)
        width = max((len(r.name) for r in self.records), default=4)
        header = f"{'phase':<{width}}  {'wall':>9}  {'cpu':>9}  {'share':>6}"
        if with_mem:
            header += f"  {'peakRSS':>9}"
        lines = [header]
        for r in self.records:
            share = (r.wall_s / total * 100.0) if total > 0 else 0.0
            line = (
                f"{r.name:<{width}}  {r.wall_s * 1e3:7.1f}ms  "
                f"{r.cpu_s * 1e3:7.1f}ms  {share:5.1f}%"
            )
            if with_mem:
                line += f"  {r.peak_rss_bytes / 2**20:7.1f}MB"
            lines.append(line)
        lines.append(f"{'total':<{width}}  {total * 1e3:7.1f}ms")
        return "\n".join(lines)


def hot_counters() -> Dict[str, float]:
    """Hot-path telemetry counters, filtered to the kernel namespaces."""
    counters = telemetry.get_telemetry().counters
    return {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith(HOT_COUNTER_PREFIXES)
    }


def profile_call(
    fn: Callable[[], Any], sort: str = "cumulative", top: int = 25
) -> Tuple[Any, str]:
    """Run *fn* under :mod:`cProfile`; return ``(result, stats_text)``.

    ``sort`` is any :mod:`pstats` sort key (``cumulative``, ``tottime``,
    ``calls``, ...); ``top`` limits the printed rows.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).strip_dirs().sort_stats(sort).print_stats(top)
    return result, buf.getvalue()
