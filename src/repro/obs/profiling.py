"""Phase timing and profiling hooks for the performance harness.

Three layers, from cheapest to heaviest:

- :class:`PhaseTimer` — named wall/CPU phase timers for coarse breakdowns
  (circuit build vs simulation vs coherence sweep).  Phases also report
  into the global :mod:`~repro.obs.telemetry` spans as ``profile.<name>``
  so they merge across worker processes like any other span.
- :func:`hot_counters` — the telemetry counters the vectorised kernels
  maintain on their hot paths (events replayed, columnar events, messages
  switched), snapshotted as a plain dict for reports.
- :func:`profile_call` — a :mod:`cProfile` hook around an arbitrary
  callable, returning the callable's result together with the formatted
  top-N table.  This is the heavy option: the profiler inflates
  Python-call-dense code (the reference kernels) far more than
  NumPy-dense code (the vectorised kernels), so use the wall-clock
  numbers from :class:`PhaseTimer` or ``benchmarks/bench_perf_suite.py``
  when comparing kernel modes, and ``profile_call`` only to find *where*
  time goes inside one mode.

Used by the ``locusroute profile`` subcommand and the performance
regression suite (``benchmarks/bench_perf_suite.py``).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Tuple

from . import telemetry

__all__ = ["PhaseRecord", "PhaseTimer", "hot_counters", "profile_call"]

#: Counter names (prefixes) the kernels maintain on their hot paths.
HOT_COUNTER_PREFIXES = ("sim.", "net.", "route.", "coherence.", "events.")


@dataclass(frozen=True)
class PhaseRecord:
    """One completed phase: name plus wall and CPU seconds."""

    name: str
    wall_s: float
    cpu_s: float


class PhaseTimer:
    """Ordered wall/CPU timing of named phases.

    ::

        timer = PhaseTimer()
        with timer.phase("build"):
            circuit = bnre_like()
        with timer.phase("simulate"):
            run_shared_memory(circuit)
        print(timer.render())

    Phases may repeat; each entry is kept (the report shows every
    occurrence in order, which makes per-iteration drift visible).
    """

    def __init__(self) -> None:
        self.records: List[PhaseRecord] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; also reported as telemetry span ``profile.<name>``."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            self.records.append(PhaseRecord(name, wall, cpu))
            telemetry.record_span(f"profile.{name}", wall, cpu)

    @property
    def total_wall_s(self) -> float:
        """Sum of all recorded phases' wall time."""
        return sum(r.wall_s for r in self.records)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary (ordered phase list plus the total)."""
        return {
            "phases": [
                {"name": r.name, "wall_s": r.wall_s, "cpu_s": r.cpu_s}
                for r in self.records
            ],
            "total_wall_s": self.total_wall_s,
        }

    def render(self) -> str:
        """Fixed-width phase table with share-of-total percentages."""
        total = self.total_wall_s
        width = max((len(r.name) for r in self.records), default=4)
        lines = [f"{'phase':<{width}}  {'wall':>9}  {'cpu':>9}  {'share':>6}"]
        for r in self.records:
            share = (r.wall_s / total * 100.0) if total > 0 else 0.0
            lines.append(
                f"{r.name:<{width}}  {r.wall_s * 1e3:7.1f}ms  "
                f"{r.cpu_s * 1e3:7.1f}ms  {share:5.1f}%"
            )
        lines.append(f"{'total':<{width}}  {total * 1e3:7.1f}ms")
        return "\n".join(lines)


def hot_counters() -> Dict[str, float]:
    """Hot-path telemetry counters, filtered to the kernel namespaces."""
    counters = telemetry.get_telemetry().counters
    return {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith(HOT_COUNTER_PREFIXES)
    }


def profile_call(
    fn: Callable[[], Any], sort: str = "cumulative", top: int = 25
) -> Tuple[Any, str]:
    """Run *fn* under :mod:`cProfile`; return ``(result, stats_text)``.

    ``sort`` is any :mod:`pstats` sort key (``cumulative``, ``tottime``,
    ``calls``, ...); ``top`` limits the printed rows.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).strip_dirs().sort_stats(sort).print_stats(top)
    return result, buf.getvalue()
