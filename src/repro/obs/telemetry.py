"""Lightweight performance telemetry: counters and wall/CPU span timers.

The simulators and the experiment harness report into a process-global
:class:`Telemetry` instance so that any entry point (CLI, tests, bench
scripts) can read a consistent picture of how much work was done:
events processed by the discrete-event kernel, messages injected into
the wormhole network, shared-memory trace references, cache hits, and
the wall/CPU time of each simulation span.

Overhead discipline
-------------------
Nothing here runs per-event.  The event kernel reports one *batch*
counter increment per :meth:`~repro.events.sim.Simulator.run` call, and
the simulators report their totals once per run — so the hot loops stay
exactly as tight as before instrumentation.

Worker processes of the parallel harness each carry their own global
instance; the parent folds their :meth:`Telemetry.snapshot` dictionaries
back in with :meth:`Telemetry.merge` (counters and span aggregates are
both additive).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = [
    "Telemetry",
    "get_telemetry",
    "incr",
    "record_span",
    "span",
    "snapshot",
    "reset",
]


class Telemetry:
    """Additive counters plus per-span wall/CPU time aggregates."""

    __slots__ = ("counters", "spans")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.spans: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def incr(self, name: str, n: float = 1) -> None:
        """Add *n* to counter *name* (created at 0 on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def record_span(self, name: str, wall_s: float, cpu_s: float) -> None:
        """Fold one timed span into the aggregate for *name*."""
        agg = self.spans.setdefault(
            name, {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        agg["calls"] += 1
        agg["wall_s"] += wall_s
        agg["cpu_s"] += cpu_s

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context manager measuring a wall/CPU span under *name*."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            self.record_span(
                name, time.perf_counter() - wall0, time.process_time() - cpu0
            )

    # ------------------------------------------------------------------
    # reading / combining
    # ------------------------------------------------------------------
    def count(self, name: str) -> float:
        """Current value of counter *name* (0 if never incremented)."""
        return self.counters.get(name, 0)

    def rate(self, counter: str, span_name: str) -> Optional[float]:
        """Counter *counter* per wall-second of span *span_name*.

        ``None`` when the span is absent or has zero wall time.
        """
        agg = self.spans.get(span_name)
        if agg is None or agg["wall_s"] <= 0:
            return None
        return self.counters.get(counter, 0) / agg["wall_s"]

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict copy (JSON-safe, safe to mutate)."""
        return {
            "counters": dict(self.counters),
            "spans": {name: dict(agg) for name, agg in self.spans.items()},
        }

    def merge(self, snap: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this."""
        for name, value in snap.get("counters", {}).items():
            self.incr(name, value)
        for name, agg in snap.get("spans", {}).items():
            dst = self.spans.setdefault(
                name, {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            for key in ("calls", "wall_s", "cpu_s"):
                dst[key] += agg.get(key, 0)

    def reset(self) -> None:
        """Drop every counter and span."""
        self.counters.clear()
        self.spans.clear()


#: The process-global instance every simulator reports into.
_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-global :class:`Telemetry` instance."""
    return _GLOBAL


def incr(name: str, n: float = 1) -> None:
    """Increment a counter on the global instance."""
    _GLOBAL.incr(name, n)


def record_span(name: str, wall_s: float, cpu_s: float) -> None:
    """Record one timed span on the global instance."""
    _GLOBAL.record_span(name, wall_s, cpu_s)


def span(name: str):
    """Timed-span context manager on the global instance."""
    return _GLOBAL.span(name)


def snapshot() -> Dict[str, object]:
    """Snapshot of the global instance."""
    return _GLOBAL.snapshot()


def reset() -> None:
    """Reset the global instance (tests and worker-process startup)."""
    _GLOBAL.reset()
