"""Observability: performance counters and wall/CPU span timers.

See :mod:`repro.obs.telemetry` for the model.  Typical use::

    from repro import obs

    obs.reset()
    run_message_passing(circuit, schedule)
    tel = obs.get_telemetry()
    print(tel.count("sim.events"), tel.rate("sim.events", "sim.mp"))
"""

from .profiling import (
    PhaseRecord,
    PhaseTimer,
    hot_counters,
    memory_snapshot,
    profile_call,
    record_peak_memory,
)
from .telemetry import (
    Telemetry,
    get_telemetry,
    incr,
    record_span,
    reset,
    snapshot,
    span,
)

__all__ = [
    "PhaseRecord",
    "PhaseTimer",
    "Telemetry",
    "get_telemetry",
    "hot_counters",
    "incr",
    "memory_snapshot",
    "profile_call",
    "record_peak_memory",
    "record_span",
    "reset",
    "snapshot",
    "span",
]
