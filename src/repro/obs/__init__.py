"""Observability: performance counters and wall/CPU span timers.

See :mod:`repro.obs.telemetry` for the model.  Typical use::

    from repro import obs

    obs.reset()
    run_message_passing(circuit, schedule)
    tel = obs.get_telemetry()
    print(tel.count("sim.events"), tel.rate("sim.events", "sim.mp"))
"""

from .telemetry import (
    Telemetry,
    get_telemetry,
    incr,
    record_span,
    reset,
    snapshot,
    span,
)

__all__ = [
    "Telemetry",
    "get_telemetry",
    "incr",
    "record_span",
    "reset",
    "snapshot",
    "span",
]
