"""Command line interface.

Installed as ``locusroute`` (also ``python -m repro``).  Subcommands:

``circuit``
    Generate / inspect benchmark circuits and write them to disk.
``route``
    Run the sequential LocusRoute on a circuit and report quality.
``mp``
    Run the message passing simulation with a chosen update schedule.
``sm``
    Run the shared memory simulation with chosen cache line sizes.
``run``
    Run a *live* parallel router — real worker processes on real cores
    instead of the event-driven simulators (docs/PARALLEL.md).
``experiment``
    Run paper experiments (T1-T6, X1-X5, or ``all``) and print the
    paper-vs-measured tables.
``verify``
    Run the consistency verification sweep: every invariant checker
    plus the three-way differential oracle (see docs/VERIFICATION.md).
``profile``
    Time experiments phase by phase (wall/CPU), dump the kernels' hot
    path counters, and optionally attach cProfile (docs/PERFORMANCE.md).
``serve``
    Run the routing service daemon: a JSON/HTTP job queue over the
    salvage process pool with a SQLite result repository
    (docs/SERVICE.md).
``jobs``
    Talk to a running daemon: submit jobs, poll status, fetch results,
    list the submission history.

The global ``--kernels {vectorized,reference}`` flag (before the
subcommand) selects the simulation kernel implementation process-wide;
both produce bit-identical results (see :mod:`repro.kernels`).

Examples
--------
::

    locusroute circuit --name bnrE --stats
    locusroute route --name bnrE --iterations 3
    locusroute mp --name bnrE --send-rmt 2 --send-loc 10 --procs 16
    locusroute sm --name bnrE --line-sizes 4 8 16 32
    locusroute run --live sm --procs 4 --quick
    locusroute run --live mp --procs 4 --send-rmt 1 --send-loc 1 --quick
    locusroute experiment T1 T6
    locusroute experiment all --quick --out results/
    locusroute verify --quick
    locusroute profile T3 --quick
    locusroute --kernels reference profile T3 T6 --quick --cprofile
    locusroute serve --port 8642 --jobs 4
    locusroute jobs submit route --wires 160 --iterations 2 --wait
    locusroute jobs submit experiment --exp-id T1 --quick --wait
    locusroute jobs list --timeline
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__
from .circuits import (
    SCALED_SEED,
    bnre_like,
    compute_stats,
    generate_scaled,
    load_json,
    mdc_like,
    save_json,
    save_text,
)
from .errors import ReproError
from .harness.pool import default_jobs
from .harness.runner import BENCH_FILENAME, run_all
from .kernels import KERNEL_MODES, set_kernels
from .parallel import (
    run_dynamic_assignment,
    run_live_message_passing,
    run_live_shared_memory,
    run_message_passing,
    run_shared_memory,
)
from .route import SequentialRouter
from .updates import PacketStructure, UpdateSchedule

__all__ = ["main", "build_parser"]


def _get_circuit(args: argparse.Namespace):
    """Resolve the circuit from --name or --load."""
    if getattr(args, "load", None):
        return load_json(args.load)
    name = args.name.lower()
    if name in ("bnre", "bnre-like"):
        return bnre_like(n_wires=args.wires)
    if name in ("mdc", "mdc-like"):
        return mdc_like(n_wires=args.wires)
    if name in ("scaled", "s1"):
        return generate_scaled(
            args.wires if args.wires is not None else 10_000,
            rent_exponent=getattr(args, "rent", None) or 0.6,
            seed=getattr(args, "circuit_seed", None) or SCALED_SEED,
        )
    raise SystemExit(f"unknown circuit name {args.name!r} (use bnrE, MDC, or scaled)")


def _add_circuit_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--name", default="bnrE", help="benchmark circuit (bnrE, MDC, or scaled)"
    )
    parser.add_argument("--load", help="load a circuit JSON file instead")
    parser.add_argument("--wires", type=int, default=None, help="override wire count")
    parser.add_argument(
        "--rent",
        type=float,
        default=None,
        help="Rent exponent for --name scaled (default 0.6; lower = more local)",
    )
    parser.add_argument(
        "--circuit-seed",
        type=int,
        default=None,
        help="RNG seed for --name scaled (default: fixed S-series seed)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="locusroute",
        description="LocusRoute message passing vs shared memory reproduction "
        "(Martonosi & Gupta, ICPP 1989)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument(
        "--kernels",
        choices=list(KERNEL_MODES),
        default=None,
        help="simulation kernel implementation (default: vectorized; both "
        "modes produce bit-identical results)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_circuit = sub.add_parser("circuit", help="generate / inspect circuits")
    _add_circuit_args(p_circuit)
    p_circuit.add_argument("--stats", action="store_true", help="print netlist statistics")
    p_circuit.add_argument("--save-json", help="write the circuit as JSON")
    p_circuit.add_argument("--save-text", help="write the circuit as text")

    p_route = sub.add_parser("route", help="sequential LocusRoute")
    _add_circuit_args(p_route)
    p_route.add_argument("--iterations", type=int, default=3)
    p_route.add_argument(
        "--json",
        action="store_true",
        help="print the JSON payload (same shape as a service route job)",
    )

    p_mp = sub.add_parser("mp", help="message passing simulation")
    _add_circuit_args(p_mp)
    p_mp.add_argument("--procs", type=int, default=16)
    p_mp.add_argument("--iterations", type=int, default=3)
    p_mp.add_argument("--send-loc", type=int, default=None, help="SendLocData interval")
    p_mp.add_argument("--send-rmt", type=int, default=None, help="SendRmtData interval")
    p_mp.add_argument("--req-loc", type=int, default=None, help="ReqLocData threshold")
    p_mp.add_argument("--req-rmt", type=int, default=None, help="ReqRmtData threshold")
    p_mp.add_argument("--blocking", action="store_true", help="blocking requests")
    p_mp.add_argument(
        "--packet-structure",
        choices=[ps.value for ps in PacketStructure],
        default=PacketStructure.BOUNDING_BOX.value,
        help="update packet encoding (paper §4.3.1)",
    )
    p_mp.add_argument(
        "--interrupts",
        action="store_true",
        help="interrupt-driven request reception (paper §4.2)",
    )
    p_mp.add_argument(
        "--check-invariants",
        action="store_true",
        help="run the repro.verify invariant checkers alongside the simulation",
    )
    p_mp.add_argument(
        "--quick",
        action="store_true",
        help="CI-scale smoke run: 160-wire circuit, 2 iterations, and (when "
        "no schedule flags are given) the blocking receiver-initiated 1/5 "
        "schedule so fault flags exercise the recovery path",
    )
    p_mp.add_argument(
        "--fault-drop",
        type=float,
        default=0.0,
        metavar="P",
        help="drop each packet with probability P (deterministic, see --fault-seed)",
    )
    p_mp.add_argument(
        "--fault-duplicate",
        type=float,
        default=0.0,
        metavar="P",
        help="duplicate each packet with probability P",
    )
    p_mp.add_argument(
        "--fault-delay",
        type=float,
        default=0.0,
        metavar="P",
        help="delay each packet with probability P",
    )
    p_mp.add_argument(
        "--fault-reorder",
        type=float,
        default=0.0,
        metavar="P",
        help="reorder each packet with probability P",
    )
    p_mp.add_argument(
        "--fault-crash",
        type=int,
        default=0,
        metavar="N",
        help="fail-stop crash N processors mid-run (deterministic per "
        "--fault-seed; survivors detect the deaths and adopt the work)",
    )
    p_mp.add_argument(
        "--crash-at",
        type=float,
        default=0.01,
        metavar="T",
        help="base virtual time (seconds) of the --fault-crash crashes; "
        "actual times spread deterministically over [T, 1.5*T]",
    )
    p_mp.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="PCG64 seed of the fault stream (same seed => identical faults)",
    )
    p_mp.add_argument("--json", action="store_true", help="print a JSON summary")

    p_dyn = sub.add_parser("dynamic", help="dynamic wire assignment (§4.2)")
    _add_circuit_args(p_dyn)
    p_dyn.add_argument("--procs", type=int, default=16)
    p_dyn.add_argument("--send-loc", type=int, default=None)
    p_dyn.add_argument("--send-rmt", type=int, default=None)
    p_dyn.add_argument("--interrupts", action="store_true")
    p_dyn.add_argument("--json", action="store_true", help="print a JSON summary")

    p_sm = sub.add_parser("sm", help="shared memory simulation")
    _add_circuit_args(p_sm)
    p_sm.add_argument("--procs", type=int, default=16)
    p_sm.add_argument("--iterations", type=int, default=3)
    p_sm.add_argument(
        "--line-sizes", type=int, nargs="+", default=[8], help="cache line sizes (bytes)"
    )
    p_sm.add_argument(
        "--protocol",
        choices=["invalidate", "update"],
        default="invalidate",
        help="coherence protocol for the traffic replay",
    )
    p_sm.add_argument(
        "--check-invariants",
        action="store_true",
        help="run the repro.verify invariant checkers alongside the simulation",
    )
    p_sm.add_argument("--json", action="store_true", help="print a JSON summary")

    p_run = sub.add_parser(
        "run", help="live parallel execution on real cores (docs/PARALLEL.md)"
    )
    _add_circuit_args(p_run)
    p_run.add_argument(
        "--live",
        choices=["sm", "mp"],
        required=True,
        help="which paradigm to run live: shared memory or message passing",
    )
    p_run.add_argument("--procs", type=int, default=2, help="worker processes")
    p_run.add_argument("--iterations", type=int, default=3)
    p_run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="wire-order shuffle seed for the shared-memory distributed loop "
        "(default: natural order)",
    )
    p_run.add_argument("--send-loc", type=int, default=None, help="SendLocData interval (mp)")
    p_run.add_argument("--send-rmt", type=int, default=None, help="SendRmtData interval (mp)")
    p_run.add_argument("--req-rmt", type=int, default=None, help="ReqRmtData interval (mp)")
    p_run.add_argument("--blocking", action="store_true", help="blocking requests (mp)")
    p_run.add_argument(
        "--start-method",
        choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method (default: platform default, or "
        "the REPRO_MP_START_METHOD environment variable)",
    )
    p_run.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="abort the live run after this much wall time",
    )
    p_run.add_argument(
        "--quick",
        action="store_true",
        help="CI-scale smoke run: 160-wire circuit, 2 iterations",
    )
    p_run.add_argument("--json", action="store_true", help="print a JSON summary")

    p_exp = sub.add_parser("experiment", help="run paper experiments")
    p_exp.add_argument("ids", nargs="+", help="experiment ids (T1..T6, X1..X5, or 'all')")
    p_exp.add_argument("--quick", action="store_true", help="shrunk circuits, fast run")
    p_exp.add_argument("--out", help="directory for JSON results")
    p_exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process-pool width (0 = one per CPU); many ids fan out per "
        "experiment, a single id fans out its sweep rows",
    )
    p_exp.add_argument(
        "--cache-dir",
        default=".locusroute_cache",
        help="content-addressed result cache directory "
        "(default: %(default)s)",
    )
    p_exp.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache (neither read nor write it)",
    )
    p_exp.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task timeout for parallel execution (retried once)",
    )
    p_exp.add_argument(
        "--bench",
        metavar="PATH",
        help=f"write the {BENCH_FILENAME} telemetry record here "
        "(default: into --out when given)",
    )

    p_verify = sub.add_parser(
        "verify",
        help="invariant checkers + three-way differential oracle",
    )
    _add_circuit_args(p_verify)
    p_verify.add_argument(
        "--quick", action="store_true", help="CI-scale circuit and processor count"
    )
    p_verify.add_argument("--procs", type=int, default=None)
    p_verify.add_argument("--iterations", type=int, default=None)
    p_verify.add_argument("--json", action="store_true", help="print a JSON report")

    p_profile = sub.add_parser(
        "profile",
        help="phase timers, hot-path counters, optional cProfile",
    )
    p_profile.add_argument(
        "ids", nargs="*", default=["T3"], help="experiment ids (default: T3)"
    )
    p_profile.add_argument(
        "--quick", action="store_true", help="shrunk circuits, fast run"
    )
    p_profile.add_argument(
        "--cprofile",
        action="store_true",
        help="attach cProfile and print the top functions per experiment "
        "(inflates Python-call-dense code; compare kernel modes by wall "
        "clock, not by profiler output)",
    )
    p_profile.add_argument(
        "--sort",
        default="cumulative",
        help="cProfile sort key (cumulative, tottime, calls, ...)",
    )
    p_profile.add_argument(
        "--top", type=int, default=20, help="cProfile rows to print"
    )
    p_profile.add_argument("--json", action="store_true", help="print a JSON report")

    p_serve = sub.add_parser(
        "serve",
        help="routing service daemon: HTTP job queue + SQLite repository "
        "(docs/SERVICE.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument(
        "--db",
        default=".locusroute_service.sqlite",
        help="SQLite repository file (default: %(default)s)",
    )
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="salvage-pool width for job execution (0 = one per CPU)",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=".locusroute_cache",
        help="file cache kept as a read-through layer (default: %(default)s)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the file-cache read-through layer",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job pool timeout (retried once, then the job fails)",
    )

    p_jobs = sub.add_parser(
        "jobs", help="client for a running routing service daemon"
    )
    p_jobs.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="service base URL (default: %(default)s)",
    )
    jsub = p_jobs.add_subparsers(dest="jobs_command", required=True)

    j_submit = jsub.add_parser("submit", help="submit one job")
    j_submit.add_argument(
        "kind", choices=["route", "mp", "sm", "experiment"], help="job kind"
    )
    j_submit.add_argument("--name", default=None, help="circuit (bnrE or MDC)")
    j_submit.add_argument("--wires", type=int, default=None)
    j_submit.add_argument("--iterations", type=int, default=None)
    j_submit.add_argument("--procs", type=int, default=None)
    j_submit.add_argument("--quick", action="store_true")
    j_submit.add_argument("--send-loc", type=int, default=None, help="mp only")
    j_submit.add_argument("--send-rmt", type=int, default=None, help="mp only")
    j_submit.add_argument("--req-loc", type=int, default=None, help="mp only")
    j_submit.add_argument("--req-rmt", type=int, default=None, help="mp only")
    j_submit.add_argument("--blocking", action="store_true", help="mp only")
    j_submit.add_argument("--line-size", type=int, default=None, help="sm only")
    j_submit.add_argument(
        "--protocol", choices=["invalidate", "update"], default=None, help="sm only"
    )
    j_submit.add_argument("--exp-id", default=None, help="experiment id (T1..)")
    j_submit.add_argument(
        "--force", action="store_true", help="recompute even on a stored result"
    )
    j_submit.add_argument(
        "--wait", action="store_true", help="poll until done and print the result"
    )
    j_submit.add_argument(
        "--timeout", type=float, default=600.0, help="--wait poll budget (seconds)"
    )
    j_submit.add_argument("--json", action="store_true")

    j_status = jsub.add_parser("status", help="one job's status record")
    j_status.add_argument("job_id")
    j_status.add_argument("--json", action="store_true")

    j_result = jsub.add_parser("result", help="a finished job's payload")
    j_result.add_argument("job_id")

    j_list = jsub.add_parser("list", help="submission history")
    j_list.add_argument("--status", default=None, help="filter by status")
    j_list.add_argument("--limit", type=int, default=20)
    j_list.add_argument(
        "--timeline",
        action="store_true",
        help="render the latency/status timeline (repro.viz)",
    )
    j_list.add_argument("--json", action="store_true")

    jsub.add_parser("stats", help="queue depth, counters, repository counts")

    return parser


def _cmd_circuit(args: argparse.Namespace) -> int:
    circuit = _get_circuit(args)
    print(circuit.describe())
    if args.stats:
        for key, value in compute_stats(circuit).as_dict().items():
            print(f"  {key}: {value:.3f}" if isinstance(value, float) else f"  {key}: {value}")
    if args.save_json:
        save_json(circuit, args.save_json)
        print(f"wrote {args.save_json}")
    if args.save_text:
        save_text(circuit, args.save_text)
        print(f"wrote {args.save_text}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    circuit = _get_circuit(args)
    result = SequentialRouter(circuit, iterations=args.iterations).run()
    if args.json:
        from .service.jobs import route_payload

        print(json.dumps(route_payload(result), indent=1, sort_keys=True))
        return 0
    print(circuit.describe())
    print(f"circuit height:   {result.quality.circuit_height}")
    print(f"occupancy factor: {result.quality.occupancy_factor}")
    print(f"height by iteration: {result.per_iteration_height}")
    print(f"evaluation work:  {result.work_cells} candidate cells")
    return 0


def _verification_exit(result, args: argparse.Namespace) -> int:
    """Exit status for a run that may carry a verification report.

    Without ``--check-invariants`` (or when every check passed) the run
    exits 0; violations print to stderr (unless ``--json`` already
    carried them) and exit 1.
    """
    if not getattr(args, "check_invariants", False):
        return 0
    verification = result.meta.get("verification", {})
    if verification.get("ok", True):
        if not args.json:
            print(f"invariants: {verification.get('total_checks', 0)} checks, 0 violations")
        return 0
    if not args.json:
        for v in verification.get("violations", []):
            parts = [f"VIOLATION [{v['invariant']}] {v['message']}"]
            if "cell" in v:
                parts.append(f"cell=(c={v['cell'][0]}, x={v['cell'][1]})")
            for key in ("wire", "proc", "event_time_s"):
                if key in v:
                    parts.append(f"{key}={v[key]}")
            print("  ".join(parts), file=sys.stderr)
    return 1


def _build_fault_plan(args: argparse.Namespace):
    """The FaultPlan implied by the --fault-* flags (None when fault-free)."""
    probs = (
        args.fault_drop,
        args.fault_duplicate,
        args.fault_delay,
        args.fault_reorder,
    )
    n_crashes = getattr(args, "fault_crash", 0)
    if all(p == 0 for p in probs) and n_crashes == 0:
        return None  # negative values fall through to FaultPlan validation
    from .faults import FaultPlan, random_crashes

    crashes = ()
    if n_crashes != 0:  # negative counts fall through to validation too
        crashes = random_crashes(
            args.procs, n_crashes, args.crash_at, args.fault_seed
        )
    return FaultPlan(
        seed=args.fault_seed,
        drop_prob=args.fault_drop,
        duplicate_prob=args.fault_duplicate,
        delay_prob=args.fault_delay,
        reorder_prob=args.fault_reorder,
        node_crashes=crashes,
    )


def _cmd_mp(args: argparse.Namespace) -> int:
    no_schedule_flags = all(
        v is None for v in (args.send_loc, args.send_rmt, args.req_loc, args.req_rmt)
    )
    if args.quick:
        if args.wires is None and args.load is None:
            args.wires = 160
        if args.iterations == 3:  # the argparse default
            args.iterations = 2
    circuit = _get_circuit(args)
    if args.quick and no_schedule_flags:
        schedule = UpdateSchedule.receiver_initiated(1, 5, blocking=True)
    else:
        schedule = UpdateSchedule(
            send_loc_every=args.send_loc,
            send_rmt_every=args.send_rmt,
            req_loc_every=args.req_loc,
            req_rmt_every=args.req_rmt,
            blocking=args.blocking,
            packet_structure=PacketStructure(args.packet_structure),
            interrupt_reception=args.interrupts,
        )
    faults = _build_fault_plan(args)
    result = run_message_passing(
        circuit,
        schedule,
        n_procs=args.procs,
        iterations=args.iterations,
        check_invariants=args.check_invariants,
        faults=faults,
    )
    if args.json:
        print(json.dumps(result.summary_dict(), indent=1))
        return _verification_exit(result, args)
    print(f"{circuit.describe()}")
    print(f"schedule: {schedule.describe()}  processors: {args.procs}")
    for key, value in result.table_row().items():
        print(f"  {key}: {value}")
    print(f"  messages: {result.network.n_messages}")
    print(f"  mean latency: {result.network.mean_latency_s * 1e6:.1f} us")
    if faults is not None:
        fmeta = result.meta["faults"]
        injected, recovery = fmeta["injected"], fmeta["recovery"]
        print(f"faults: {fmeta['plan']}")
        print(
            f"  injected: {injected['send_attempts']} attempts, "
            f"{injected['dropped']} dropped, {injected['duplicated']} duplicated, "
            f"{injected['delayed']} delayed, {injected['reordered']} reordered"
        )
        print(
            f"  recovery: {recovery['retries_sent']} retries, "
            f"{recovery['requests_abandoned']} abandoned, "
            f"{recovery['duplicate_responses_ignored']} duplicate responses ignored"
        )
        crash = fmeta.get("crash")
        if crash is not None:
            lats = [lat for _dead, lat in crash["recovery_latency_s"]]
            worst = f"{max(lats):.3f}s" if lats else "n/a"
            print(
                f"  crashes: {len(crash['planned'])} planned, "
                f"{len(crash['confirmed'])} confirmed dead "
                f"(procs {crash['confirmed']}), worst detection {worst}"
            )
            print(
                f"  re-ownership: {crash['regions_reassigned']} regions "
                f"reassigned, {crash['wires_adopted']} wires adopted, "
                f"{recovery['probes_sent']} probes, "
                f"{recovery['death_notices_received']} death notices"
            )
    return _verification_exit(result, args)


def _cmd_sm(args: argparse.Namespace) -> int:
    circuit = _get_circuit(args)
    primary, extra = args.line_sizes[0], args.line_sizes[1:]
    result = run_shared_memory(
        circuit,
        n_procs=args.procs,
        iterations=args.iterations,
        line_size=primary,
        extra_line_sizes=extra,
        protocol=args.protocol,
        check_invariants=args.check_invariants,
    )
    if args.json:
        print(json.dumps(result.summary_dict(), indent=1))
        return _verification_exit(result, args)
    print(f"{circuit.describe()}")
    print(f"processors: {args.procs}  (dynamic distributed loop)")
    for key, value in result.table_row().items():
        print(f"  {key}: {value}")
    for ls, stats in sorted(result.meta.get("coherence_by_line_size", {}).items()):
        print(
            f"  line {ls:2d}B: {stats['mbytes']:.3f} MB "
            f"(write-caused {stats['write_caused_fraction']:.0%})"
        )
    return _verification_exit(result, args)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.quick:
        if args.wires is None and args.load is None:
            args.wires = 160
        if args.iterations == 3:  # the argparse default
            args.iterations = 2
    circuit = _get_circuit(args)
    if args.live == "sm":
        result = run_live_shared_memory(
            circuit,
            n_procs=args.procs,
            iterations=args.iterations,
            seed=args.seed,
            start_method=args.start_method,
            timeout_s=args.timeout,
        )
    else:
        if all(v is None for v in (args.send_loc, args.send_rmt, args.req_rmt)):
            schedule = None  # library default: the SRD=1 SLD=1 push schedule
        else:
            schedule = UpdateSchedule(
                send_loc_every=args.send_loc,
                send_rmt_every=args.send_rmt,
                req_rmt_every=args.req_rmt,
                blocking=args.blocking,
            )
        result = run_live_message_passing(
            circuit,
            schedule,
            n_procs=args.procs,
            iterations=args.iterations,
            start_method=args.start_method,
            timeout_s=args.timeout,
        )
    if args.json:
        print(json.dumps(result.summary_dict(), indent=1))
        return 0 if result.replay_ok else 1
    print(f"{circuit.describe()}")
    print(
        f"live {result.paradigm}: {args.procs} processes "
        f"({result.meta['start_method']} start, {result.meta['kernel_mode']} kernels)"
    )
    for key, value in result.table_row().items():
        print(f"  {key}: {value}")
    print(f"  total wall: {result.wall_s:.3f}s (routing {result.routing_wall_s:.3f}s)")
    if args.live == "mp":
        traffic = result.meta["traffic"]
        print(
            f"  traffic: {traffic['messages_sent']} packets, "
            f"{traffic['bytes_sent']} bytes, "
            f"{traffic['requests_sent']} requests "
            f"({traffic['requests_abandoned']} abandoned)"
        )
        print(f"  max node-view divergence: {result.meta['view_divergence_max']}")
    else:
        crash = result.meta.get("crash", {})
        if crash.get("confirmed"):
            print(
                f"  crashes: {len(crash['confirmed'])} confirmed, "
                f"{crash['requeued_wires']} wires requeued"
            )
    if not result.replay_ok:
        print("REPLAY VERIFICATION FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    circuit = _get_circuit(args)
    schedule = UpdateSchedule(
        send_loc_every=args.send_loc,
        send_rmt_every=args.send_rmt,
        interrupt_reception=args.interrupts,
    )
    result = run_dynamic_assignment(circuit, schedule, n_procs=args.procs)
    if args.json:
        print(json.dumps(result.summary_dict(), indent=1))
        return 0
    print(f"{circuit.describe()}")
    print(f"assignment: {result.meta['assignment']}  processors: {args.procs}")
    for key, value in result.table_row().items():
        print(f"  {key}: {value}")
    print(f"  mean task wait: {result.meta['mean_task_wait_s'] * 1e3:.2f} ms")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = None if [i.lower() for i in args.ids] == ["all"] else args.ids
    jobs = default_jobs() if args.jobs == 0 else args.jobs
    results = run_all(
        ids,
        quick=args.quick,
        out_dir=args.out,
        jobs=jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        timeout_s=args.timeout,
        bench_path=args.bench,
    )
    return 0 if all(r.passed for r in results) else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify import run_verification

    circuit = None
    if args.load or args.wires is not None or args.name.lower() not in ("bnre", "bnre-like"):
        circuit = _get_circuit(args)
    run = run_verification(
        quick=args.quick,
        circuit=circuit,
        n_procs=args.procs,
        iterations=args.iterations,
    )
    if args.json:
        print(json.dumps(run.as_dict(), indent=1))
    else:
        print(run.render())
    return 0 if run.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from .harness import run_experiment
    from .kernels import active_kernels
    from .obs import PhaseTimer, hot_counters, memory_snapshot, profile_call

    timer = PhaseTimer(track_memory=True)
    profiles = {}
    results = {}
    for exp_id in args.ids:
        with timer.phase(exp_id):
            if args.cprofile:
                results[exp_id], profiles[exp_id] = profile_call(
                    lambda exp_id=exp_id: run_experiment(exp_id, quick=args.quick),
                    sort=args.sort,
                    top=args.top,
                )
            else:
                results[exp_id] = run_experiment(exp_id, quick=args.quick)
    counters = hot_counters()
    memory = memory_snapshot()
    if args.json:
        print(
            json.dumps(
                {
                    "kernels": active_kernels(),
                    "quick": args.quick,
                    "timing": timer.as_dict(),
                    "memory": memory,
                    "hot_counters": counters,
                    "passed": {k: r.passed for k, r in results.items()},
                },
                indent=1,
            )
        )
    else:
        print(f"kernels: {active_kernels()}  quick: {args.quick}")
        print(timer.render())
        print(
            f"memory: rss {memory['rss_bytes'] / 2**20:.1f}MB  "
            f"peak rss {memory['peak_rss_bytes'] / 2**20:.1f}MB"
        )
        if counters:
            print("hot-path counters:")
            for name, value in counters.items():
                print(f"  {name}: {value:.0f}")
        for exp_id, text in profiles.items():
            print(f"--- cProfile {exp_id} (sort={args.sort}) ---")
            print(text)
    return 0 if all(r.passed for r in results.values()) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve

    server = serve(
        host=args.host,
        port=args.port,
        db=args.db,
        cache_dir=None if args.no_cache else args.cache_dir,
        jobs=default_jobs() if args.jobs == 0 else args.jobs,
        timeout_s=args.timeout,
    )
    host, port = server.server_address[:2]
    print(f"routing service listening on http://{host}:{port}")
    print(f"repository: {server.service.repository.path}")
    cache = server.service.cache
    print(f"read-through file cache: {cache.directory if cache else 'disabled'}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.service.stop()
        server.service.repository.close()
    return 0


def _jobs_submit_params(args: argparse.Namespace) -> dict:
    """The params dict implied by the ``jobs submit`` flags (sparse: only
    flags the user set are sent; the service fills canonical defaults)."""
    params = {}
    if args.kind == "experiment":
        if args.exp_id is not None:
            params["exp_id"] = args.exp_id
        if args.quick:
            params["quick"] = True
        return params
    for flag, name in (
        ("name", "which"),
        ("wires", "n_wires"),
        ("iterations", "iterations"),
    ):
        value = getattr(args, flag)
        if value is not None:
            params[name] = value
    if args.quick:
        params["quick"] = True
    if args.kind in ("mp", "sm") and args.procs is not None:
        params["n_procs"] = args.procs
    if args.kind == "mp":
        for flag in ("send_loc", "send_rmt", "req_loc", "req_rmt"):
            value = getattr(args, flag)
            if value is not None:
                params[flag] = value
        if args.blocking:
            params["blocking"] = True
    if args.kind == "sm":
        if args.line_size is not None:
            params["line_size"] = args.line_size
        if args.protocol is not None:
            params["protocol"] = args.protocol
    return params


def _cmd_jobs(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.jobs_command == "submit":
        record = client.submit(
            args.kind, _jobs_submit_params(args), force=args.force
        )
        if args.wait and record["status"] not in ("done", "failed"):
            record = client.wait(record["job_id"], timeout_s=args.timeout)
        if record["status"] == "failed":
            full = client.status(record["job_id"])
            print(f"error: {full.get('error') or 'job failed'}", file=sys.stderr)
            return 1
        if args.wait:
            payload = client.result(record["job_id"])["payload"]
            print(json.dumps(payload, indent=1, sort_keys=True))
            return 0
        if args.json:
            print(json.dumps(record, indent=1))
        else:
            extra = f" (dedup of {record['dedup_of']})" if "dedup_of" in record else ""
            print(f"job {record['job_id']}: {record['status']}{extra}")
            print(f"fingerprint: {record['fingerprint']}")
        return 0
    if args.jobs_command == "status":
        record = client.status(args.job_id)
        if args.json:
            print(json.dumps(record, indent=1))
        else:
            for key in ("job_id", "kind", "status", "source", "dedup_of", "error"):
                if record.get(key) is not None:
                    print(f"  {key}: {record[key]}")
        return 0 if record["status"] != "failed" else 1
    if args.jobs_command == "result":
        print(json.dumps(client.result(args.job_id)["payload"], indent=1, sort_keys=True))
        return 0
    if args.jobs_command == "list":
        records = client.list_jobs(status=args.status, limit=args.limit)
        if args.json:
            print(json.dumps(records, indent=1))
            return 0
        if args.timeline:
            from .viz import ascii_job_timeline

            print(ascii_job_timeline(records))
            return 0
        from .harness.tables import render_table

        rows = [
            {
                "job": r["job_id"],
                "kind": r["kind"],
                "status": r["status"],
                "source": r.get("source", ""),
                "wall_s": (
                    round(r["finished_unix"] - r["started_unix"], 3)
                    if r.get("finished_unix") and r.get("started_unix")
                    else ""
                ),
                "fingerprint": r["fingerprint"][:12],
            }
            for r in records
        ]
        print(
            render_table(
                "jobs", ["job", "kind", "status", "source", "wall_s", "fingerprint"], rows
            )
        )
        return 0
    # stats
    print(json.dumps(client.stats(), indent=1))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (bad parameters, malformed files, protocol misuse)
    surface as one-line ``error:`` messages with exit code 2 instead of
    tracebacks.
    """
    args = build_parser().parse_args(argv)
    if args.kernels is not None:
        set_kernels(args.kernels)
    handlers = {
        "circuit": _cmd_circuit,
        "route": _cmd_route,
        "mp": _cmd_mp,
        "sm": _cmd_sm,
        "run": _cmd_run,
        "dynamic": _cmd_dynamic,
        "experiment": _cmd_experiment,
        "verify": _cmd_verify,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
        "jobs": _cmd_jobs,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
