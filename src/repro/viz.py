"""ASCII visualisations of the paper's explanatory figures.

The paper's Figures 1-3 are diagrams rather than data plots:

- **Figure 1** — a standard cell placement and its cost array, with a
  routed wire's cells highlighted: :func:`ascii_cost_array` (pass the
  wire's path to see its footprint marked).
- **Figure 2** — the division of the cost array into owned regions:
  :func:`ascii_regions`.
- **Figure 3** — the classification of update types:
  :func:`ascii_update_taxonomy`.

``examples/figures.py`` renders all three for the tiny demo circuit.
Rendering is terminal-friendly, dependency-free and deterministic.

Beyond the paper's figures, :func:`ascii_job_timeline` renders the
routing service's submission history (docs/SERVICE.md) as a latency bar
chart — ``locusroute jobs list --timeline``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .grid.cost_array import CostArray
from .grid.regions import RegionMap
from .route.path import RoutePath

__all__ = [
    "ascii_cost_array",
    "ascii_regions",
    "ascii_update_taxonomy",
    "ascii_job_timeline",
]

#: Occupancy glyphs: blank for empty, then increasing density.
_DENSITY = " .:-=+*#%@"


def ascii_cost_array(
    cost: CostArray,
    highlight: Optional[RoutePath] = None,
    max_width: int = 100,
) -> str:
    """Render a cost array as ASCII art (Figure 1).

    Cell occupancies map to a density ramp; the optional *highlight* path's
    cells render as ``o`` (empty highlighted cell) or ``O`` (occupied) —
    "the highlighted portions of the cost array will be incremented if
    this route is chosen".  Wide arrays are column-downsampled to
    ``max_width`` (each glyph shows the max of its column bucket).
    """
    data = cost.data
    n_channels, n_grids = data.shape
    step = max(1, -(-n_grids // max_width))
    mark = np.zeros_like(data, dtype=bool)
    if highlight is not None:
        channels, xs = highlight.coords()
        mark[channels, xs] = True

    lines: List[str] = []
    width = -(-n_grids // step)
    lines.append("+" + "-" * width + "+")
    for c in range(n_channels):
        row_chars = []
        for x0 in range(0, n_grids, step):
            block = data[c, x0 : x0 + step]
            marked = bool(mark[c, x0 : x0 + step].any())
            level = int(block.max())
            if marked:
                row_chars.append("O" if level > 0 else "o")
            else:
                glyph = _DENSITY[min(level, len(_DENSITY) - 1)]
                row_chars.append(glyph)
        lines.append("|" + "".join(row_chars) + f"| channel {c}")
    lines.append("+" + "-" * width + "+")
    tracks = cost.channel_maxima()
    lines.append(
        f"circuit height = {int(tracks.sum())} tracks "
        f"(per channel: {' '.join(str(int(t)) for t in tracks)})"
    )
    return "\n".join(lines)


def ascii_regions(regions: RegionMap, max_width: int = 100) -> str:
    """Render the owned-region division of the cost array (Figure 2)."""
    step = max(1, -(-regions.n_grids // max_width))
    width = -(-regions.n_grids // step)
    lines = [
        f"cost array {regions.n_channels}x{regions.n_grids} divided among "
        f"{regions.n_procs} processors ({regions.p_rows}x{regions.p_cols} mesh)"
    ]
    lines.append("+" + "-" * width + "+")
    for c in range(regions.n_channels):
        chars = []
        for x0 in range(0, regions.n_grids, step):
            owner = regions.owner_of(c, min(x0, regions.n_grids - 1))
            chars.append(format(owner, "X") if owner < 16 else "?")
        lines.append("|" + "".join(chars) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append("each glyph is the hex id of the cell's owner processor")
    return "\n".join(lines)


#: Status glyphs of the job timeline (plain ASCII, like everything here).
_STATUS_GLYPHS = {"done": "=", "failed": "x", "running": ">", "queued": "."}


def ascii_job_timeline(
    jobs: Iterable[Dict[str, object]], max_width: int = 50
) -> str:
    """Render routing-service job records as a latency/status timeline.

    One line per job (as returned by ``Repository.jobs()`` — newest
    first): a bar of ``=`` proportional to the job's wall time relative
    to the slowest job shown, the status spelled out, and a marker for
    deduplicated submissions.  Jobs without timing (queued, running,
    served from the repository or file cache) render their status glyph
    instead of a bar.
    """
    jobs = list(jobs)
    if not jobs:
        return "(no jobs)"
    walls = []
    for job in jobs:
        started, finished = job.get("started_unix"), job.get("finished_unix")
        walls.append(
            float(finished) - float(started)
            if isinstance(started, (int, float)) and isinstance(finished, (int, float))
            else None
        )
    slowest = max((w for w in walls if w), default=0.0)
    id_width = max(len(str(j.get("job_id", ""))) for j in jobs)
    lines = []
    for job, wall in zip(jobs, walls):
        status = str(job.get("status", "?"))
        glyph = _STATUS_GLYPHS.get(status, "?")
        if wall is not None and slowest > 0:
            bar = glyph * max(1, round(wall / slowest * max_width))
            timing = f" {wall:.3f}s"
        elif wall is not None:
            bar, timing = glyph, f" {wall:.3f}s"
        else:
            bar, timing = glyph, ""
        dedup = " (dedup)" if job.get("dedup_of") else ""
        source = job.get("source")
        via = f" via {source}" if source and source not in ("executed", "dedup") else ""
        lines.append(
            f"{str(job.get('job_id', '')).ljust(id_width)} "
            f"{str(job.get('kind', '')).ljust(10)} "
            f"{status.ljust(7)} |{bar}|{timing}{dedup}{via}"
        )
    return "\n".join(lines)


def ascii_update_taxonomy() -> str:
    """Render the Figure-3 classification of update transactions."""
    return "\n".join(
        [
            "                     cost array updates",
            "                    /                  \\",
            "        sender initiated            receiver initiated",
            "        /            \\              /               \\",
            "  SendLocData    SendRmtData   ReqLocData        ReqRmtData",
            "  (absolute,     (deltas, to   (owner pulls      (pull absolute",
            "   own region,    the region's  a remote's        data for a",
            "   to N/S/E/W     owner)        deltas in its     remote region",
            "   neighbours)                  own region)       ahead of need)",
            "                                      \\               /",
            "                                    blocking | non-blocking",
        ]
    )
