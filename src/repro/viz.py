"""ASCII visualisations of the paper's explanatory figures.

The paper's Figures 1-3 are diagrams rather than data plots:

- **Figure 1** — a standard cell placement and its cost array, with a
  routed wire's cells highlighted: :func:`ascii_cost_array` (pass the
  wire's path to see its footprint marked).
- **Figure 2** — the division of the cost array into owned regions:
  :func:`ascii_regions`.
- **Figure 3** — the classification of update types:
  :func:`ascii_update_taxonomy`.

``examples/figures.py`` renders all three for the tiny demo circuit.
Rendering is terminal-friendly, dependency-free and deterministic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .grid.cost_array import CostArray
from .grid.regions import RegionMap
from .route.path import RoutePath

__all__ = ["ascii_cost_array", "ascii_regions", "ascii_update_taxonomy"]

#: Occupancy glyphs: blank for empty, then increasing density.
_DENSITY = " .:-=+*#%@"


def ascii_cost_array(
    cost: CostArray,
    highlight: Optional[RoutePath] = None,
    max_width: int = 100,
) -> str:
    """Render a cost array as ASCII art (Figure 1).

    Cell occupancies map to a density ramp; the optional *highlight* path's
    cells render as ``o`` (empty highlighted cell) or ``O`` (occupied) —
    "the highlighted portions of the cost array will be incremented if
    this route is chosen".  Wide arrays are column-downsampled to
    ``max_width`` (each glyph shows the max of its column bucket).
    """
    data = cost.data
    n_channels, n_grids = data.shape
    step = max(1, -(-n_grids // max_width))
    mark = np.zeros_like(data, dtype=bool)
    if highlight is not None:
        channels, xs = highlight.coords()
        mark[channels, xs] = True

    lines: List[str] = []
    width = -(-n_grids // step)
    lines.append("+" + "-" * width + "+")
    for c in range(n_channels):
        row_chars = []
        for x0 in range(0, n_grids, step):
            block = data[c, x0 : x0 + step]
            marked = bool(mark[c, x0 : x0 + step].any())
            level = int(block.max())
            if marked:
                row_chars.append("O" if level > 0 else "o")
            else:
                glyph = _DENSITY[min(level, len(_DENSITY) - 1)]
                row_chars.append(glyph)
        lines.append("|" + "".join(row_chars) + f"| channel {c}")
    lines.append("+" + "-" * width + "+")
    tracks = cost.channel_maxima()
    lines.append(
        f"circuit height = {int(tracks.sum())} tracks "
        f"(per channel: {' '.join(str(int(t)) for t in tracks)})"
    )
    return "\n".join(lines)


def ascii_regions(regions: RegionMap, max_width: int = 100) -> str:
    """Render the owned-region division of the cost array (Figure 2)."""
    step = max(1, -(-regions.n_grids // max_width))
    width = -(-regions.n_grids // step)
    lines = [
        f"cost array {regions.n_channels}x{regions.n_grids} divided among "
        f"{regions.n_procs} processors ({regions.p_rows}x{regions.p_cols} mesh)"
    ]
    lines.append("+" + "-" * width + "+")
    for c in range(regions.n_channels):
        chars = []
        for x0 in range(0, regions.n_grids, step):
            owner = regions.owner_of(c, min(x0, regions.n_grids - 1))
            chars.append(format(owner, "X") if owner < 16 else "?")
        lines.append("|" + "".join(chars) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append("each glyph is the hex id of the cell's owner processor")
    return "\n".join(lines)


def ascii_update_taxonomy() -> str:
    """Render the Figure-3 classification of update transactions."""
    return "\n".join(
        [
            "                     cost array updates",
            "                    /                  \\",
            "        sender initiated            receiver initiated",
            "        /            \\              /               \\",
            "  SendLocData    SendRmtData   ReqLocData        ReqRmtData",
            "  (absolute,     (deltas, to   (owner pulls      (pull absolute",
            "   own region,    the region's  a remote's        data for a",
            "   to N/S/E/W     owner)        deltas in its     remote region",
            "   neighbours)                  own region)       ahead of need)",
            "                                      \\               /",
            "                                    blocking | non-blocking",
        ]
    )
