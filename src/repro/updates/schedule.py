"""Update schedules: when each transaction kind fires.

The paper parameterises every strategy by "how many wires should be routed
between updates" (§4.3.2) or by request-count thresholds (§4.3.3):

- ``send_loc_every``: wires routed between SendLocData pushes (k1 in the
  tables' *SendLocData* column).
- ``send_rmt_every``: wires routed between SendRmtData pushes (k2, the
  *SendRmtData* column).
- ``req_rmt_every``: a ReqRmtData request fires for a region after this
  many of the processor's wires have touched that region (*ReqRmtData*).
- ``req_loc_every``: an owner sends ReqLocData to a remote after receiving
  this many ReqRmtData requests from it (*ReqLocData*).
- ``blocking``: whether receiver-initiated requesters idle until the
  response arrives (§4.3.3).
- ``lookahead_wires``: how many wires ahead ReqRmtData requests are issued
  ("we chose to have processors request updates for five wires at a
  time").

``None`` disables a transaction kind entirely.  The classic configurations
from the results section are provided as constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import ProtocolError
from .structures import PacketStructure

__all__ = ["UpdateSchedule"]

#: Paper §4.3.3: requests are issued five wires ahead of need.
DEFAULT_LOOKAHEAD = 5


@dataclass(frozen=True)
class UpdateSchedule:
    """A complete update-strategy configuration (see module docstring)."""

    send_loc_every: Optional[int] = None
    send_rmt_every: Optional[int] = None
    req_rmt_every: Optional[int] = None
    req_loc_every: Optional[int] = None
    blocking: bool = False
    lookahead_wires: int = DEFAULT_LOOKAHEAD
    #: §4.3.1 data-packet encoding (wire-based / full-region / bounding-box).
    packet_structure: PacketStructure = PacketStructure.BOUNDING_BOX
    #: Interrupt-driven reception (§4.2): request packets interrupt the
    #: routing of the current wire and are serviced at arrival (plus an
    #: interrupt overhead), instead of waiting for the next between-wires
    #: poll.  CBS could not simulate this; this reproduction can, which is
    #: what lets the §5.1.3 prediction about blocking strategies be tested
    #: (see benchmarks/bench_a2_interrupts.py).
    interrupt_reception: bool = False

    def __post_init__(self) -> None:
        for name in ("send_loc_every", "send_rmt_every", "req_rmt_every", "req_loc_every"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ProtocolError(f"{name} must be >= 1 or None, got {value}")
        if self.lookahead_wires < 0:
            raise ProtocolError("lookahead_wires must be >= 0")
        if self.blocking and self.req_rmt_every is None:
            raise ProtocolError("blocking mode requires receiver-initiated requests")

    # ------------------------------------------------------------------
    # classification predicates (Figure 3)
    # ------------------------------------------------------------------
    @property
    def has_sender_initiated(self) -> bool:
        """True if any push-style transactions are enabled."""
        return self.send_loc_every is not None or self.send_rmt_every is not None

    @property
    def has_receiver_initiated(self) -> bool:
        """True if any request-style transactions are enabled."""
        return self.req_rmt_every is not None or self.req_loc_every is not None

    @property
    def is_mixed(self) -> bool:
        """True for schedules combining both initiation styles (§5.1.3)."""
        return self.has_sender_initiated and self.has_receiver_initiated

    @property
    def is_silent(self) -> bool:
        """True when no updates ever flow (processors route fully blind)."""
        return not (self.has_sender_initiated or self.has_receiver_initiated)

    # ------------------------------------------------------------------
    # the configurations used in the paper's results section
    # ------------------------------------------------------------------
    @staticmethod
    def sender_initiated(send_rmt_every: int, send_loc_every: int) -> "UpdateSchedule":
        """A purely sender-initiated schedule (Table 1 rows)."""
        return UpdateSchedule(
            send_loc_every=send_loc_every, send_rmt_every=send_rmt_every
        )

    @staticmethod
    def receiver_initiated(
        req_loc_every: int, req_rmt_every: int, blocking: bool = False
    ) -> "UpdateSchedule":
        """A purely receiver-initiated schedule (Table 2 rows)."""
        return UpdateSchedule(
            req_loc_every=req_loc_every,
            req_rmt_every=req_rmt_every,
            blocking=blocking,
        )

    @staticmethod
    def mixed_example() -> "UpdateSchedule":
        """The §5.1.3 mixed schedule: SLD=5, SRD=2, RLD=1, RRD=5."""
        return UpdateSchedule(
            send_loc_every=5, send_rmt_every=2, req_loc_every=1, req_rmt_every=5
        )

    def with_blocking(self, blocking: bool) -> "UpdateSchedule":
        """Copy of this schedule with the blocking flag changed."""
        return replace(self, blocking=blocking)

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``SLD=5 SRD=2 RLD=1 RRD=5``."""
        parts = []
        if self.send_loc_every is not None:
            parts.append(f"SLD={self.send_loc_every}")
        if self.send_rmt_every is not None:
            parts.append(f"SRD={self.send_rmt_every}")
        if self.req_loc_every is not None:
            parts.append(f"RLD={self.req_loc_every}")
        if self.req_rmt_every is not None:
            parts.append(f"RRD={self.req_rmt_every}")
        if self.blocking:
            parts.append("blocking")
        if self.packet_structure is not PacketStructure.BOUNDING_BOX:
            parts.append(self.packet_structure.value)
        return " ".join(parts) if parts else "silent"
