"""The three §4.3.1 update-packet structures.

The paper weighs three encodings for cost-array updates before choosing
the third:

1. **Wire-based** — "coordinates of the start and end points of each
   horizontal or vertical segment of the wire, along with a flag
   indicating whether this wire had been ripped up ... or routed".
   Compact when few wires changed; payload grows with change *count*, not
   change *area*.
2. **Full-region** — "the values of an entire region of the cost array
   owned by one of the processors".  Trivial to assemble and apply, but
   every update costs the whole region.
3. **Bounding-box** (the paper's choice, and this package's default) —
   scan the delta array, send the bounding box of the changes plus its
   coordinates.

All three carry the *same information*; the simulators always apply
updates through the bbox/values mechanism, and the structure choice
changes the accounted wire bytes (and the assembly/disassembly work) —
exactly the tradeoff the paper discusses.  The
``benchmarks/bench_a1_packet_structures.py`` ablation regenerates that
comparison.
"""

from __future__ import annotations

import enum

from ..errors import ProtocolError

__all__ = [
    "PacketStructure",
    "WIRE_RECORD_BYTES",
    "SEGMENT_RECORD_BYTES",
    "wire_based_bytes",
]


class PacketStructure(enum.Enum):
    """How data-carrying update packets are encoded on the wire."""

    WIRE_BASED = "wire-based"
    FULL_REGION = "full-region"
    BOUNDING_BOX = "bounding-box"


#: Per changed wire: a wire id plus the routed/ripped-up flag.
WIRE_RECORD_BYTES = 4
#: Per two-bend segment: (x1, c1, x2, c2, xv) as 16-bit coordinates.
SEGMENT_RECORD_BYTES = 10


def wire_based_bytes(n_wires: int, n_segments: int) -> int:
    """Payload bytes of a wire-based update describing the given changes."""
    if n_wires < 0 or n_segments < 0:
        raise ProtocolError("change counts cannot be negative")
    return WIRE_RECORD_BYTES * n_wires + SEGMENT_RECORD_BYTES * n_segments
