"""The Figure-3 classification of cost-array update transactions.

Paper §4.3.2-4.3.3 defines four transaction types along two axes —
who initiates (sender vs receiver) and whose data moves (the initiator's
owned region vs a remotely owned region):

==============  =================  ============================================
Kind            Initiated by       Carries
==============  =================  ============================================
SendLocData     sender (owner)     absolute values of the owner's region bbox,
                                   pushed to the owner's N/S/E/W neighbours
SendRmtData     sender (non-owner) *delta* values the sender accumulated in a
                                   remotely owned region, pushed to its owner
ReqRmtData      receiver           a request for absolute values of a remote
                                   region bbox; the owner answers with data
ReqLocData      receiver (owner)   a request for a remote's deltas in the
                                   owner's own region; the remote answers
==============  =================  ============================================

Receiver-initiated requests additionally choose **blocking** (requester
idles until the response arrives) or **non-blocking** semantics (§4.3.3).

Beyond the paper's four transaction types, three header-only *control*
kinds support failure detection under crash-fault plans: a suspected
peer is probed with ``HEARTBEAT``, answers with ``HEARTBEAT_ACK``, and a
confirmed death is gossiped to every survivor as ``DEATH_NOTICE`` (the
dead processor id rides in the packet's ``region_owner`` field).
"""

from __future__ import annotations

import enum

__all__ = [
    "UpdateKind",
    "is_sender_initiated",
    "is_request",
    "is_data",
    "is_control",
]


class UpdateKind(enum.Enum):
    """Every packet kind that crosses the network in the MP implementation."""

    SEND_LOC_DATA = "SendLocData"  #: sender-initiated absolute data push
    SEND_RMT_DATA = "SendRmtData"  #: sender-initiated delta push
    REQ_RMT_DATA = "ReqRmtData"  #: receiver-initiated request for remote data
    REQ_LOC_DATA = "ReqLocData"  #: owner-initiated request for remote deltas
    RSP_RMT_DATA = "RspRmtData"  #: absolute-data response to ReqRmtData
    RSP_LOC_DATA = "RspLocData"  #: delta-data response to ReqLocData
    HEARTBEAT = "Heartbeat"  #: liveness probe to a suspected peer
    HEARTBEAT_ACK = "HeartbeatAck"  #: probe answer (peer is alive)
    DEATH_NOTICE = "DeathNotice"  #: gossip: ``region_owner`` is confirmed dead


def is_sender_initiated(kind: UpdateKind) -> bool:
    """True for the two push-style transaction kinds."""
    return kind in (UpdateKind.SEND_LOC_DATA, UpdateKind.SEND_RMT_DATA)


def is_request(kind: UpdateKind) -> bool:
    """True for the two request packets (small, carry only a bbox)."""
    return kind in (UpdateKind.REQ_RMT_DATA, UpdateKind.REQ_LOC_DATA)


def is_data(kind: UpdateKind) -> bool:
    """True for packets whose payload carries cost/delta array cells."""
    return kind in (
        UpdateKind.SEND_LOC_DATA,
        UpdateKind.SEND_RMT_DATA,
        UpdateKind.RSP_RMT_DATA,
        UpdateKind.RSP_LOC_DATA,
    )


def is_control(kind: UpdateKind) -> bool:
    """True for the header-only liveness/membership packets."""
    return kind in (
        UpdateKind.HEARTBEAT,
        UpdateKind.HEARTBEAT_ACK,
        UpdateKind.DEATH_NOTICE,
    )
