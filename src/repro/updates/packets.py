"""Update packet construction and wire-size accounting.

Paper §4.3.1 weighs three packet structures and picks the third: "the
sending processor scans the delta array for changes ... For each cost
array region, the sender constructs a packet which contains the bounding
box of all the changes made within that region, as well as the coordinates
of the bounding box being sent."

Wire format (accounted, never actually serialised — the simulator moves
NumPy blocks):

- every packet: a fixed :data:`HEADER_BYTES` header (kind, source,
  destination, sequence — 1+1+1+1 bytes — plus the 4x2-byte bbox
  coordinates, total 12);
- data packets add ``bbox.area *`` :data:`ENTRY_BYTES` payload (cost
  entries are 16-bit counts);
- request packets are header-only.

These sizes put the reproduction's traffic in the same regime as the
paper's (a full 16-processor owned region of bnrE is ~213 cells = 426
payload bytes; change bboxes are typically much smaller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ProtocolError
from ..grid.bbox import BBox
from ..grid.cost_array import CostArray
from ..grid.delta import DeltaArray
from .types import UpdateKind, is_control, is_data, is_request

__all__ = [
    "HEADER_BYTES",
    "ENTRY_BYTES",
    "UpdatePacket",
    "packet_bytes",
    "build_loc_data",
    "build_rmt_data",
    "build_request",
    "build_response",
    "build_control",
]

#: Fixed per-packet header: kind/src/dst/seq plus 4 x 16-bit bbox coordinates.
HEADER_BYTES = 12
#: Bytes per transmitted cost/delta array entry (16-bit counts).
ENTRY_BYTES = 2


@dataclass(frozen=True)
class UpdatePacket:
    """One update transaction travelling as a network message payload.

    ``values`` is ``None`` for request packets; for data packets it is the
    ``(bbox.height, bbox.width)`` block of absolute cost values
    (SendLocData / RspRmtData) or signed deltas (SendRmtData / RspLocData).
    ``region_owner`` records which processor owns the region the bbox lies
    in (used by ReqLocData bookkeeping and assertions).
    """

    kind: UpdateKind
    src: int
    dst: int
    bbox: BBox
    values: Optional[np.ndarray]
    region_owner: int
    #: Optional wire-size override used by the alternative §4.3.1 packet
    #: structures (wire-based encoding): the *information* still travels
    #: as bbox + values, but the accounted bytes follow the encoding.
    wire_bytes: Optional[int] = None
    #: Request correlation id: set on ReqRmtData/ReqLocData by nodes that
    #: track recovery state, echoed back on the matching response.  Fits
    #: in the header's sequence byte conceptually, so it adds no wire
    #: bytes.  ``None`` preserves the legacy un-tracked protocol.
    req_id: Optional[int] = None

    def __post_init__(self) -> None:
        if is_request(self.kind) or is_control(self.kind):
            if self.values is not None:
                raise ProtocolError(f"{self.kind} packets carry no payload")
        elif is_data(self.kind):
            if self.values is None:
                raise ProtocolError(f"{self.kind} packets need a payload")
            if self.values.shape != (self.bbox.height, self.bbox.width):
                raise ProtocolError(
                    f"payload shape {self.values.shape} != bbox "
                    f"{self.bbox.height}x{self.bbox.width}"
                )

    @property
    def length_bytes(self) -> int:
        """Wire size of this packet (encoding override wins if present)."""
        if self.wire_bytes is not None:
            return self.wire_bytes
        return packet_bytes(self.kind, self.bbox)

    @property
    def payload_cells(self) -> int:
        """Number of array cells carried (0 for requests)."""
        return 0 if self.values is None else int(self.values.size)


def packet_bytes(kind: UpdateKind, bbox: BBox) -> int:
    """Wire size of a packet of *kind* covering *bbox*."""
    if is_request(kind) or is_control(kind):
        return HEADER_BYTES
    return HEADER_BYTES + ENTRY_BYTES * bbox.area


def build_loc_data(
    src: int, dst: int, cost: CostArray, delta: DeltaArray, region: BBox
) -> Optional[UpdatePacket]:
    """Build a SendLocData packet: absolute values of *src*'s dirty bbox.

    Scans the sender's own region of the delta array for changes; returns
    ``None`` when the region is clean (the update "will not be sent out",
    §4.3.2).  The caller clears the region's deltas after sending to all
    neighbours.
    """
    dirty = delta.region_dirty_bbox(region)
    if dirty is None:
        return None
    return UpdatePacket(
        kind=UpdateKind.SEND_LOC_DATA,
        src=src,
        dst=dst,
        bbox=dirty,
        values=cost.extract(dirty),
        region_owner=src,
    )


def build_rmt_data(
    src: int, dst: int, delta: DeltaArray, region: BBox
) -> Optional[UpdatePacket]:
    """Build a SendRmtData packet: *src*'s deltas inside *dst*'s region.

    "The processor sending this update is not the owner processor of the
    region, so it does not send the absolute cost array entries.  Rather,
    it sends the corresponding locations from the delta array" (§4.3.2).
    Returns ``None`` when the region holds no pending deltas.
    """
    dirty = delta.region_dirty_bbox(region)
    if dirty is None:
        return None
    return UpdatePacket(
        kind=UpdateKind.SEND_RMT_DATA,
        src=src,
        dst=dst,
        bbox=dirty,
        values=delta.extract(dirty),
        region_owner=dst,
    )


def build_request(
    kind: UpdateKind,
    src: int,
    dst: int,
    bbox: BBox,
    region_owner: int,
    req_id: Optional[int] = None,
) -> UpdatePacket:
    """Build a ReqRmtData / ReqLocData request covering *bbox*."""
    if not is_request(kind):
        raise ProtocolError(f"{kind} is not a request kind")
    return UpdatePacket(
        kind=kind,
        src=src,
        dst=dst,
        bbox=bbox,
        values=None,
        region_owner=region_owner,
        req_id=req_id,
    )


def build_control(
    kind: UpdateKind,
    src: int,
    dst: int,
    subject: int,
    req_id: Optional[int] = None,
) -> UpdatePacket:
    """Build a header-only liveness packet (HEARTBEAT / ACK / DEATH_NOTICE).

    ``subject`` is the processor the packet is about — the prober for a
    HEARTBEAT, the responder for an ACK, the confirmed-dead processor for
    a DEATH_NOTICE — and rides in the header's ``region_owner`` field, so
    control packets add no payload bytes.
    """
    if not is_control(kind):
        raise ProtocolError(f"{kind} is not a control kind")
    return UpdatePacket(
        kind=kind,
        src=src,
        dst=dst,
        bbox=BBox(0, 0, 0, 0),
        values=None,
        region_owner=subject,
        req_id=req_id,
    )


def build_response(request: UpdatePacket, values: np.ndarray) -> UpdatePacket:
    """Build the data response answering *request* (bbox is echoed back)."""
    if request.kind is UpdateKind.REQ_RMT_DATA:
        kind = UpdateKind.RSP_RMT_DATA
    elif request.kind is UpdateKind.REQ_LOC_DATA:
        kind = UpdateKind.RSP_LOC_DATA
    else:
        raise ProtocolError(f"cannot respond to a {request.kind} packet")
    return UpdatePacket(
        kind=kind,
        src=request.dst,
        dst=request.src,
        bbox=request.bbox,
        values=values,
        region_owner=request.region_owner,
        req_id=request.req_id,
    )
