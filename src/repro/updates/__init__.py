"""Explicit cost-array update machinery for the message passing mapping:
the Figure-3 transaction taxonomy, bounding-box packet construction from
delta arrays, and the wire/request-count schedules of §4.3."""

from .packets import (
    ENTRY_BYTES,
    HEADER_BYTES,
    UpdatePacket,
    build_control,
    build_loc_data,
    build_request,
    build_response,
    build_rmt_data,
    packet_bytes,
)
from .schedule import DEFAULT_LOOKAHEAD, UpdateSchedule
from .structures import (
    SEGMENT_RECORD_BYTES,
    WIRE_RECORD_BYTES,
    PacketStructure,
    wire_based_bytes,
)
from .types import UpdateKind, is_control, is_data, is_request, is_sender_initiated

__all__ = [
    "UpdateKind",
    "is_sender_initiated",
    "is_request",
    "is_data",
    "is_control",
    "UpdatePacket",
    "packet_bytes",
    "build_loc_data",
    "build_rmt_data",
    "build_request",
    "build_response",
    "build_control",
    "HEADER_BYTES",
    "ENTRY_BYTES",
    "UpdateSchedule",
    "DEFAULT_LOOKAHEAD",
    "PacketStructure",
    "wire_based_bytes",
    "WIRE_RECORD_BYTES",
    "SEGMENT_RECORD_BYTES",
]
