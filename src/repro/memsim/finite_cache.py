"""Finite (direct-mapped) caches under write-back invalidation.

The paper's Table 3 assumes infinite caches, noting in footnote 3 that
"traffic is also a function of the cache size, because a small cache will
have a higher miss rate requiring more data fetches from main memory".
:class:`FiniteWriteBackInvalidate` quantifies that footnote: each
processor gets a direct-mapped cache of ``cache_lines`` lines; capacity
and conflict evictions (with dirty write-backs) now add to the coherence
traffic the infinite-cache model measures.

The protocol semantics mirror :class:`~repro.memsim.coherence.
WriteBackInvalidate`: reads fetch missing lines, the first write to a
line not already dirty-by-self goes out as a 4-byte word write and
invalidates other copies, and dirty lines are flushed (``line_size``
bytes) whenever another cache takes them — or, newly, when they are
evicted.

Within one access burst, lines are processed as a set; if two lines of a
burst collide in the same cache set, the later one wins the frame (the
model charges both fetches — the worst case a real LRU-less cache pays).
"""

from __future__ import annotations

import numpy as np

from ..errors import CoherenceError
from .addressing import WORD_BYTES, AddressMap
from .stats import CoherenceStats
from .trace import ReferenceTrace

__all__ = ["FiniteWriteBackInvalidate", "simulate_trace_finite"]


class FiniteWriteBackInvalidate:
    """Write-back-invalidate over per-processor direct-mapped caches."""

    MAX_PROCS = 63

    def __init__(self, n_procs: int, address_map: AddressMap, cache_lines: int) -> None:
        if not (1 <= n_procs <= self.MAX_PROCS):
            raise CoherenceError(f"n_procs must be in [1, {self.MAX_PROCS}]")
        if cache_lines < 1:
            raise CoherenceError("cache must hold at least one line")
        self.n_procs = n_procs
        self.amap = address_map
        self.n_sets = cache_lines
        # Frame state per (processor, set): which line sits there (-1 =
        # empty) and whether it is dirty.
        self._tag = np.full((n_procs, cache_lines), -1, dtype=np.int64)
        self._dirty = np.zeros((n_procs, cache_lines), dtype=bool)
        self._ever_held = np.zeros(address_map.n_lines, dtype=np.int64)
        self.stats = CoherenceStats(line_size=address_map.line_size)
        self.n_evictions = 0

    # ------------------------------------------------------------------
    def _sets_of(self, lines: np.ndarray) -> np.ndarray:
        return lines % self.n_sets

    def _fill(self, proc: int, lines: np.ndarray, make_dirty: bool) -> None:
        """Install *lines* in *proc*'s cache, evicting what's there."""
        sets = self._sets_of(lines)
        old = self._tag[proc][sets]
        evict = (old >= 0) & (old != lines)
        self.n_evictions += int(evict.sum())
        dirty_evict = evict & self._dirty[proc][sets]
        self.stats.writeback_bytes += int(dirty_evict.sum()) * self.amap.line_size
        self._tag[proc][sets] = lines
        self._dirty[proc][sets] = make_dirty

    def _holders(self, lines: np.ndarray, exclude: int) -> np.ndarray:
        """Boolean (n_procs, len(lines)) matrix of who caches each line."""
        sets = self._sets_of(lines)
        held = self._tag[:, sets] == lines[None, :]
        held[exclude, :] = False
        return held

    def access(self, proc: int, flat_cells: np.ndarray, is_write: bool) -> None:
        """Apply one access burst."""
        if not (0 <= proc < self.n_procs):
            raise CoherenceError(f"processor {proc} out of range")
        lines = self.amap.cells_to_lines(np.asarray(flat_cells, dtype=np.int64))
        if lines.size == 0:
            return
        bit = np.int64(1) << proc
        ls = self.amap.line_size
        sets = self._sets_of(lines)
        hit = self._tag[proc][sets] == lines
        miss_lines = lines[~hit]

        if is_write:
            self.stats.n_write_refs += int(flat_cells.size)
        else:
            self.stats.n_read_refs += int(flat_cells.size)

        if miss_lines.size:
            held_before = (self._ever_held[miss_lines] & bit) != 0
            n_prior = int(held_before.sum())
            if is_write:
                self.stats.write_miss_fetch_bytes += int(miss_lines.size) * ls
            else:
                self.stats.refetch_bytes += n_prior * ls
                self.stats.cold_fetch_bytes += int(miss_lines.size - n_prior) * ls
            # A dirty copy elsewhere supplies the data and is flushed.
            holders = self._holders(miss_lines, exclude=proc)
            dirty_elsewhere = holders & self._dirty[:, self._sets_of(miss_lines)]
            flushes = int(dirty_elsewhere.any(axis=0).sum())
            self.stats.writeback_bytes += flushes * ls
            self._dirty[:, self._sets_of(miss_lines)] &= ~dirty_elsewhere

        if is_write:
            # Word write whenever the line is not already dirty-by-self.
            silent = hit & self._dirty[proc][sets]
            word_lines = lines[~silent]
            self.stats.word_write_bytes += int(word_lines.size) * WORD_BYTES
            if word_lines.size:
                holders = self._holders(word_lines, exclude=proc)
                per_line = holders.sum(axis=0)
                self.stats.n_invalidation_events += int((per_line > 0).sum())
                self.stats.n_copies_invalidated += int(per_line.sum())
                # Invalidate other copies (their frames empty out).
                w_sets = self._sets_of(word_lines)
                mask = holders
                for q in range(self.n_procs):
                    if q == proc or not mask[q].any():
                        continue
                    qs = w_sets[mask[q]]
                    self._tag[q][qs] = -1
                    self._dirty[q][qs] = False
            self._fill(proc, lines, make_dirty=True)
        else:
            if miss_lines.size:
                self._fill(proc, miss_lines, make_dirty=False)
        self._ever_held[lines] |= bit


def simulate_trace_finite(
    trace: ReferenceTrace,
    n_procs: int,
    address_map: AddressMap,
    cache_lines: int,
) -> CoherenceStats:
    """Replay *trace* through finite direct-mapped caches."""
    protocol = FiniteWriteBackInvalidate(n_procs, address_map, cache_lines)
    for record in trace.sorted_records():
        protocol.access(record.proc, record.flat_cells, record.is_write)
    return protocol.stats
