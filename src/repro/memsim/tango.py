"""Tango-style trace collection helpers.

Tango (paper §2.2) generates multiprocessor traces "on a uniprocessor by
spawning the specified number of processes and multiplexing their
execution ... controlled to closely model a run on a multiprocessor", and
the traces "contain all shared data references made by the program".

In this reproduction the multiplexing itself lives in
:mod:`repro.parallel.sm_sim` (the virtual-time shared memory run);
:class:`TangoCollector` is the recording side: it knows how the router's
logical operations map to shared-data reference bursts, and it feeds a
:class:`~repro.memsim.trace.ReferenceTrace`.

Reference footprints (DESIGN.md §5):

- *evaluating* a wire reads, per segment, the two pin-channel rows
  contiguously plus the interior channels at the sampled candidate
  columns (a strided pattern — see
  :meth:`~repro.route.twobend.SegmentRoute.read_cells`).  Because the
  candidate loop sweeps the same cells repeatedly, the evaluation is
  recorded as ``chunks`` sweeps spread across its time interval; foreign
  writes landing between sweeps invalidate lines the evaluation then
  refetches — the fine-grained interference that makes shared memory
  traffic grow with cache line size (Table 3);
- *committing* a route writes each path cell once (the increment), a
  *rip-up* writes each old path cell once (the decrement), and both also
  touch the wire's shared descriptor record (the stored path every
  processor can rip up under dynamic assignment);
- the *distributed loop* and barrier live in a handful of hot shared
  scalars that every wire grab reads and writes.

The auxiliary structures (wire records, scheduler scalars) sit in the
shared address space after the cost array; see :class:`SharedLayout`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..route.path import RoutePath
from ..route.twobend import SegmentRoute
from .trace import ReferenceTrace

__all__ = ["TangoCollector", "SharedLayout"]


@dataclass(frozen=True)
class SharedLayout:
    """Word layout of LocusRoute's shared address space.

    ``[0, array_words)`` is the cost array; then ``SCHEDULER_WORDS`` hot
    scheduler scalars (distributed loop index, barrier count, quality
    accumulators); then one ``RECORD_WORDS``-word descriptor per wire
    (pins pointer, stored path pointer, cost, flags).
    """

    n_channels: int
    n_grids: int
    n_wires: int

    SCHEDULER_WORDS = 8
    RECORD_WORDS = 4

    @property
    def array_words(self) -> int:
        """Words occupied by the cost array."""
        return self.n_channels * self.n_grids

    @property
    def scheduler_base(self) -> int:
        """First word of the scheduler scalars."""
        return self.array_words

    @property
    def records_base(self) -> int:
        """First word of the wire descriptor records."""
        return self.array_words + self.SCHEDULER_WORDS

    @property
    def total_words(self) -> int:
        """Total shared words (cost array + scalars + wire records)."""
        return self.records_base + self.RECORD_WORDS * self.n_wires

    def scheduler_cells(self) -> np.ndarray:
        """Word indices of the distributed-loop / barrier scalars."""
        return np.arange(
            self.scheduler_base, self.scheduler_base + 2, dtype=np.int64
        )

    def wire_record_cells(self, wire_idx: int) -> np.ndarray:
        """Word indices of one wire's shared descriptor record."""
        base = self.records_base + self.RECORD_WORDS * wire_idx
        return np.arange(base, base + self.RECORD_WORDS, dtype=np.int64)


class TangoCollector:
    """Records router operations as shared-data reference bursts.

    ``chunks`` controls how many repeated sweeps of each evaluation
    footprint are recorded (see module docstring); 1 disables the
    fine-grained interference model.
    """

    def __init__(self, layout: SharedLayout, enabled: bool = True, chunks: int = 4) -> None:
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        self.layout = layout
        self.enabled = enabled
        self.chunks = chunks
        self.trace = ReferenceTrace()

    def record_evaluation(
        self,
        start_time: float,
        end_time: float,
        proc: int,
        segments: Iterable[SegmentRoute],
    ) -> None:
        """Record one wire evaluation spanning ``[start_time, end_time]``.

        Each segment's read footprint is swept ``chunks`` times, at
        timestamps spread uniformly across the interval, so commits by
        other processors interleave with the evaluation exactly as under
        fine-grained multiplexing.
        """
        if not self.enabled:
            return
        footprints = [s.read_cells(self.layout.n_grids) for s in segments]
        if not footprints:
            return
        span = max(0.0, end_time - start_time)
        for k in range(self.chunks):
            t = start_time + span * k / self.chunks
            for cells in footprints:
                self.trace.add(t, proc, False, cells)

    def record_commit(self, time: float, proc: int, wire_idx: int, path: RoutePath) -> None:
        """Record committing a routed path plus its wire-record update."""
        if not self.enabled:
            return
        self.trace.add(time, proc, True, path.flat_cells)
        self.trace.add(time, proc, True, self.layout.wire_record_cells(wire_idx))

    def record_ripup(self, time: float, proc: int, wire_idx: int, path: RoutePath) -> None:
        """Record ripping up an old path (reads the record, rewrites cells)."""
        if not self.enabled:
            return
        self.trace.add(time, proc, False, self.layout.wire_record_cells(wire_idx))
        self.trace.add(time, proc, True, path.flat_cells)

    def record_loop_grab(self, time: float, proc: int) -> None:
        """Record one distributed-loop fetch (read + write of hot scalars)."""
        if not self.enabled:
            return
        cells = self.layout.scheduler_cells()
        self.trace.add(time, proc, False, cells)
        self.trace.add(time, proc, True, cells[:1])
