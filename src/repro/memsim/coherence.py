"""Write-Back-with-Invalidate coherence simulation over reference traces.

Implements the protocol the paper uses for all shared memory results
(§5.1, §5.2; Archibald & Baer's write-back invalidate family) under the
paper's infinite-cache assumption: lines are never displaced, so the only
way a processor loses a line is another processor's write invalidating it.

Per-line state is two flat NumPy arrays:

- ``sharers``: a bitmask of processors holding a valid copy;
- ``dirty_owner``: the processor holding the line modified, or −1 (clean).

Transitions per access burst (vectorised over the burst's unique lines):

**Read by p** — lines p doesn't hold are fetched (``line_size`` bytes
each; a dirty copy elsewhere is flushed and the line reverts to clean
shared).  Fetches classify as *cold* (p never held the line) or *refetch*
(p's copy was invalidated earlier).

**Write by p** — a missing line is first fetched (write-miss fetch);
then, if the line is not already dirty-by-p, the write goes out as a
4-byte *word write* on the bus, every other copy is invalidated, and the
line becomes dirty-by-p.  Subsequent writes by p hit silently in the
cache — exactly the write-back behaviour that makes the *first* write the
expensive one.

The infinite-cache assumption plus burst-level deduplication means
repeated references within one burst cost nothing extra, matching a real
cache's behaviour for the router's cell-by-cell scan loops.
"""

from __future__ import annotations

import numpy as np

from ..errors import CoherenceError
from .addressing import WORD_BYTES, AddressMap
from .stats import CoherenceStats
from .trace import ReferenceTrace, TraceRecord

__all__ = ["WriteBackInvalidate", "simulate_trace"]


class WriteBackInvalidate:
    """The protocol state machine over all cache lines."""

    MAX_PROCS = 63  # sharers bitmask lives in an int64

    def __init__(self, n_procs: int, address_map: AddressMap) -> None:
        if not (1 <= n_procs <= self.MAX_PROCS):
            raise CoherenceError(f"n_procs must be in [1, {self.MAX_PROCS}]")
        self.n_procs = n_procs
        self.amap = address_map
        n_lines = address_map.n_lines
        self._sharers = np.zeros(n_lines, dtype=np.int64)
        self._dirty_owner = np.full(n_lines, -1, dtype=np.int8)
        self._ever_held = np.zeros(n_lines, dtype=np.int64)
        self.stats = CoherenceStats(line_size=address_map.line_size)

    # ------------------------------------------------------------------
    def access(self, proc: int, flat_cells: np.ndarray, is_write: bool) -> None:
        """Apply one access burst (unique lines derived from the cells)."""
        if not (0 <= proc < self.n_procs):
            raise CoherenceError(f"processor {proc} out of range")
        lines = self.amap.cells_to_lines(flat_cells)
        if lines.size == 0:
            return
        if is_write:
            self.stats.n_write_refs += int(flat_cells.size)
            self._write(proc, lines)
        else:
            self.stats.n_read_refs += int(flat_cells.size)
            self._read(proc, lines)

    def _read(self, proc: int, lines: np.ndarray) -> None:
        bit = np.int64(1) << proc
        sharers = self._sharers[lines]
        missing = (sharers & bit) == 0
        miss_lines = lines[missing]
        if miss_lines.size:
            held_before = (self._ever_held[miss_lines] & bit) != 0
            n_refetch = int(held_before.sum())
            n_cold = int(miss_lines.size - n_refetch)
            ls = self.amap.line_size
            self.stats.cold_fetch_bytes += n_cold * ls
            self.stats.refetch_bytes += n_refetch * ls
            # A dirty copy elsewhere is flushed to memory by the fetch
            # (write-back), and the line reverts to clean shared.
            dirty = self._dirty_owner[miss_lines]
            flushed = miss_lines[dirty >= 0]
            self.stats.writeback_bytes += int(flushed.size) * ls
            self._dirty_owner[flushed] = -1
        self._sharers[lines] = sharers | bit
        self._ever_held[lines] |= bit

    def _write(self, proc: int, lines: np.ndarray) -> None:
        bit = np.int64(1) << proc
        ls = self.amap.line_size
        sharers = self._sharers[lines]

        # 1. write misses fetch the line first
        missing = (sharers & bit) == 0
        miss_lines = lines[missing]
        if miss_lines.size:
            self.stats.write_miss_fetch_bytes += int(miss_lines.size) * ls
            dirty = self._dirty_owner[miss_lines]
            flushed = miss_lines[dirty >= 0]
            self.stats.writeback_bytes += int(flushed.size) * ls
            self._dirty_owner[flushed] = -1
            sharers = sharers | np.where(missing, bit, 0)

        # 2. first write to a line not already dirty-by-us: word write on the
        #    bus; everyone else invalidates their copy.
        not_ours_dirty = self._dirty_owner[lines] != proc
        word_lines = lines[not_ours_dirty]
        if word_lines.size:
            self.stats.word_write_bytes += int(word_lines.size) * WORD_BYTES
            others = sharers[not_ours_dirty] & ~bit
            inval_mask = others != 0
            if np.any(inval_mask):
                self.stats.n_invalidation_events += int(inval_mask.sum())
                # popcount of invalidated copies
                self.stats.n_copies_invalidated += int(
                    np.bitwise_count(others[inval_mask].astype(np.uint64)).sum()
                )

        # 3. final state: we are the only sharer and the dirty owner
        self._sharers[lines] = bit
        self._dirty_owner[lines] = proc
        self._ever_held[lines] |= bit

    # ------------------------------------------------------------------
    def line_arrays(self, lines: np.ndarray):
        """Copies of ``(sharers, dirty_owner, ever_held)`` for *lines*.

        The verification layer snapshots these around an access burst to
        check the observed transition against the protocol's legal edges.
        """
        return (
            self._sharers[lines].copy(),
            self._dirty_owner[lines].copy(),
            self._ever_held[lines].copy(),
        )

    def line_state(self, line: int) -> dict:
        """Debug/introspection view of one line's state."""
        return {
            "sharers": [
                p for p in range(self.n_procs) if self._sharers[line] >> p & 1
            ],
            "dirty_owner": int(self._dirty_owner[line]),
        }


def simulate_trace(
    trace: ReferenceTrace, n_procs: int, address_map: AddressMap, checker=None
) -> CoherenceStats:
    """Replay *trace* in global time order; return the traffic totals.

    ``checker`` (a ``verify.CoherenceInvariantChecker``) is called as
    ``checker.pre(protocol, record)`` / ``checker.post(protocol, record)``
    around every access burst when supplied.
    """
    protocol = WriteBackInvalidate(n_procs, address_map)
    for record in trace.sorted_records():
        if checker is not None:
            checker.pre(protocol, record)
        protocol.access(record.proc, record.flat_cells, record.is_write)
        if checker is not None:
            checker.post(protocol, record)
    return protocol.stats
