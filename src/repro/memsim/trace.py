"""Shared-data reference traces (the Tango methodology, paper §2.2).

"These traces contain all shared data references made by the program
during execution.  For each reference, the time, address, and referencing
processor are recorded."

References are recorded at *access-burst* granularity: one
:class:`TraceRecord` carries all cells a processor touches in one logical
operation (a segment evaluation's read rectangle, a path commit's write
set) at one virtual time.  The coherence simulator only needs the per-line
access order between processors, which this representation preserves while
keeping traces compact enough to hold millions of references in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from ..errors import CoherenceError

__all__ = ["TraceRecord", "ReferenceTrace"]


@dataclass(frozen=True)
class TraceRecord:
    """One access burst: (time, processor, read/write, flat cell indices)."""

    time: float
    proc: int
    is_write: bool
    flat_cells: np.ndarray

    @property
    def n_refs(self) -> int:
        """Number of individual cell references in the burst."""
        return int(self.flat_cells.size)


@dataclass
class ReferenceTrace:
    """An append-only trace of :class:`TraceRecord` bursts.

    Records may be appended out of global time order (each virtual
    processor appends in its own time order); :meth:`sorted_records`
    produces the interleaved global order the coherence simulator
    consumes, breaking time ties by append sequence for determinism.
    """

    records: List[TraceRecord] = field(default_factory=list)
    # Cached global sort order (indices into ``records``); invalidated on
    # append so repeated replays — the Table 3 line-size sweep replays the
    # same trace once per line size — sort only once.
    _sort_cache: List[int] = field(default=None, repr=False, compare=False)

    def add(self, time: float, proc: int, is_write: bool, flat_cells: np.ndarray) -> None:
        """Append one burst (empty bursts are dropped)."""
        if flat_cells.size == 0:
            return
        if time < 0:
            raise CoherenceError(f"negative trace time {time}")
        self.records.append(
            TraceRecord(time, proc, is_write, np.asarray(flat_cells, dtype=np.int64))
        )
        self._sort_cache = None

    @property
    def n_records(self) -> int:
        """Number of bursts."""
        return len(self.records)

    @property
    def n_references(self) -> int:
        """Total individual cell references."""
        return sum(r.n_refs for r in self.records)

    def sorted_records(self) -> Iterator[TraceRecord]:
        """Records in global ``(time, append sequence)`` order.

        The sort order is cached between calls (appending invalidates it),
        since replay sweeps consume the same trace many times.
        """
        if self._sort_cache is None or len(self._sort_cache) != len(self.records):
            self._sort_cache = sorted(
                range(len(self.records)), key=lambda i: (self.records[i].time, i)
            )
        for i in self._sort_cache:
            yield self.records[i]
