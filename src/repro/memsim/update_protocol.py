"""A write-update coherence protocol, for contrast with invalidation.

The paper evaluates shared memory traffic under a Write-Back-with-
Invalidate protocol, citing Archibald & Baer's simulation study — which
compared invalidation protocols against *write-update* (distributed-write)
protocols such as Firefly/Dragon.  :class:`WriteUpdate` implements that
alternative under the same infinite-cache assumptions:

- a read miss fetches the line (``line_size`` bytes) and the copy then
  stays valid forever — updates, not invalidations, keep it coherent;
- every write to a line that *other* caches hold broadcasts the written
  word (4 bytes per written cell) to the sharers and memory;
- writes to private lines update memory lazily (write-back, no traffic
  here) — matching the invalidate protocol's silent private writes.

Because copies are never invalidated there are no refetches, so traffic
is essentially word-broadcast volume and nearly independent of the cache
line size; whether that beats invalidation depends on the write-sharing
pattern.  For LocusRoute's migratory cost-array access the broadcast
volume is large — ``benchmarks/bench_a5_write_update.py`` measures the
comparison and shows why the paper's invalidation choice suits this
workload.
"""

from __future__ import annotations

import numpy as np

from ..errors import CoherenceError
from .addressing import WORD_BYTES, AddressMap
from .stats import CoherenceStats
from .trace import ReferenceTrace

__all__ = ["WriteUpdate", "simulate_trace_write_update"]


class WriteUpdate:
    """Write-update (distributed write) protocol over all cache lines."""

    MAX_PROCS = 63

    def __init__(self, n_procs: int, address_map: AddressMap) -> None:
        if not (1 <= n_procs <= self.MAX_PROCS):
            raise CoherenceError(f"n_procs must be in [1, {self.MAX_PROCS}]")
        self.n_procs = n_procs
        self.amap = address_map
        self._sharers = np.zeros(address_map.n_lines, dtype=np.int64)
        self.stats = CoherenceStats(line_size=address_map.line_size)

    def access(self, proc: int, flat_cells: np.ndarray, is_write: bool) -> None:
        """Apply one access burst."""
        if not (0 <= proc < self.n_procs):
            raise CoherenceError(f"processor {proc} out of range")
        if flat_cells.size == 0:
            return
        cells = np.asarray(flat_cells, dtype=np.int64)
        bit = np.int64(1) << proc
        if is_write:
            self.stats.n_write_refs += int(cells.size)
            lines_per_cell = cells // self.amap.words_per_line
            # Word broadcasts: one per written cell whose line is shared
            # with at least one other cache.
            shared = (self._sharers[lines_per_cell] & ~bit) != 0
            self.stats.word_write_bytes += int(shared.sum()) * WORD_BYTES
            # Writes also need the line present locally (write-allocate).
            lines = np.unique(lines_per_cell)
            missing = (self._sharers[lines] & bit) == 0
            self.stats.write_miss_fetch_bytes += (
                int(missing.sum()) * self.amap.line_size
            )
            self._sharers[lines] |= bit
        else:
            self.stats.n_read_refs += int(cells.size)
            lines = self.amap.cells_to_lines(cells)
            missing = (self._sharers[lines] & bit) == 0
            # With updates instead of invalidations every miss is cold.
            self.stats.cold_fetch_bytes += int(missing.sum()) * self.amap.line_size
            self._sharers[lines] |= bit


def simulate_trace_write_update(
    trace: ReferenceTrace, n_procs: int, address_map: AddressMap
) -> CoherenceStats:
    """Replay *trace* through the write-update protocol."""
    protocol = WriteUpdate(n_procs, address_map)
    for record in trace.sorted_records():
        protocol.access(record.proc, record.flat_cells, record.is_write)
    return protocol.stats
