"""Per-reference (true Tango granularity) coherence analysis.

The main coherence simulators process *access bursts* — each burst's
cells hit the protocol at one instant.  Tango's actual traces recorded
every individual reference, and interleaving at that granularity exposes
invalidation/refetch interactions that burst processing coalesces (see
the T3 note in EXPERIMENTS.md).  This module replays a trace at that
granularity.

A per-reference replay through the per-line state machine would be a
Python-speed loop over millions of references; instead this module
computes the same outcome *analytically*.  Under the infinite-cache
write-back-invalidate protocol each line's history is independent, and a
reference's outcome depends only on order statistics that sorts and
prefix sums deliver:

- a reference by processor *p* to line *l* is a **cold miss** iff it is
  p's first reference to *l*;
- it is a **refetch** iff some *other* processor wrote *l* between p's
  previous reference to *l* and this one (the write invalidated p's
  copy);
- a write by *p* is a silent cache hit iff p's previous reference to *l*
  was also a write and *no* other processor touched *l* in between
  (the line was still exclusive-dirty); otherwise it costs a **word
  write** on the bus.

Those are exactly the three traffic components the paper enumerates in
§5.2 (write-back flushes, which the burst simulators also track, have no
closed order-statistic form and are omitted here — documented in
:func:`simulate_trace_reference_level`).

The whole computation is NumPy sorts and segmented prefix sums: a few
million references replay in well under a second per line size.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import CoherenceError
from .addressing import WORD_BYTES, AddressMap
from .stats import CoherenceStats
from .trace import ReferenceTrace

__all__ = ["expand_trace", "analyze_references", "simulate_trace_reference_level"]


def expand_trace(trace: ReferenceTrace) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a burst trace into per-reference streams in global order.

    Returns ``(words, procs, writes)`` arrays ordered by (burst time,
    append sequence, position inside the burst) — i.e. each burst's cells
    become consecutive individual references, preserving the recorded
    intra-burst order.
    """
    records = list(trace.sorted_records())
    if not records:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(np.int8), empty.astype(bool)
    words = np.concatenate([r.flat_cells for r in records])
    procs = np.concatenate(
        [np.full(r.n_refs, r.proc, dtype=np.int16) for r in records]
    )
    writes = np.concatenate(
        [np.full(r.n_refs, r.is_write, dtype=bool) for r in records]
    )
    return words, procs, writes


def _group_exclusive_prefix(
    sort_idx: np.ndarray, group_key: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Exclusive prefix sums of *values* within groups of equal keys.

    ``sort_idx`` orders the data so equal keys are contiguous (and
    original order is preserved within a group); the result is scattered
    back to original indices.
    """
    sorted_keys = group_key[sort_idx]
    sorted_vals = values[sort_idx].astype(np.int64)
    cum = np.cumsum(sorted_vals) - sorted_vals  # exclusive, global
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    # subtract each group's base so prefixes restart at every group
    base = np.repeat(cum[starts], np.diff(np.concatenate((starts, [len(cum)]))))
    out = np.empty(len(values), dtype=np.int64)
    out[sort_idx] = cum - base
    return out


def _is_first_in_group(sort_idx: np.ndarray, group_key: np.ndarray) -> np.ndarray:
    """Boolean mask (original order): is this ref the first of its group?"""
    sorted_keys = group_key[sort_idx]
    first_sorted = np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    out = np.empty(len(group_key), dtype=bool)
    out[sort_idx] = first_sorted
    return out


def _prev_in_group(sort_idx: np.ndarray, group_key: np.ndarray) -> np.ndarray:
    """Original index of each ref's predecessor in its group (-1 if none)."""
    sorted_keys = group_key[sort_idx]
    prev_sorted = np.concatenate(([-1], sort_idx[:-1]))
    prev_sorted[np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))] = -1
    out = np.empty(len(group_key), dtype=np.int64)
    out[sort_idx] = prev_sorted
    return out


def analyze_references(
    words: np.ndarray,
    procs: np.ndarray,
    writes: np.ndarray,
    address_map: AddressMap,
) -> CoherenceStats:
    """Closed-form per-reference write-back-invalidate traffic analysis."""
    n = len(words)
    stats = CoherenceStats(line_size=address_map.line_size)
    if n == 0:
        return stats
    if len(procs) != n or len(writes) != n:
        raise CoherenceError("words/procs/writes length mismatch")
    if int(procs.max()) > 63 or int(procs.min()) < 0:
        raise CoherenceError("processor ids must lie in [0, 63] (key packing)")

    lines = words.astype(np.int64) // address_map.words_per_line
    order = np.arange(n, dtype=np.int64)
    # Composite (line, proc) key; procs are small so this never overflows.
    lp_key = lines * 64 + procs.astype(np.int64)

    # Stable sorts keep original (time) order inside every group.
    by_line = np.argsort(lines, kind="stable")
    by_lp = np.argsort(lp_key, kind="stable")

    ones = np.ones(n, dtype=np.int64)
    w = writes.astype(np.int64)

    line_writes_before = _group_exclusive_prefix(by_line, lines, w)
    own_writes_before = _group_exclusive_prefix(by_lp, lp_key, w)
    foreign_writes_before = line_writes_before - own_writes_before

    line_refs_before = _group_exclusive_prefix(by_line, lines, ones)
    own_refs_before = _group_exclusive_prefix(by_lp, lp_key, ones)
    foreign_refs_before = line_refs_before - own_refs_before

    cold = _is_first_in_group(by_lp, lp_key)
    prev = _prev_in_group(by_lp, lp_key)
    has_prev = prev >= 0
    prev_safe = np.where(has_prev, prev, 0)

    # Refetch: a foreign write landed since my previous touch of the line.
    refetch = has_prev & (
        foreign_writes_before > foreign_writes_before[prev_safe]
    )

    ls = address_map.line_size
    miss = cold | refetch
    stats.cold_fetch_bytes = int(cold.sum()) * ls
    stats.refetch_bytes = int(refetch.sum()) * ls

    # Word writes: every write except a repeat write to a line still
    # exclusively dirty by this processor — i.e. p wrote the line before
    # and *no foreign reference* touched it since that write (p's own
    # reads of its dirty line do not disturb exclusivity).
    n_sorted = len(by_lp)
    w_sorted = writes[by_lp]
    grp_first_sorted = np.concatenate(
        ([True], lp_key[by_lp][1:] != lp_key[by_lp][:-1])
    )
    group_id = np.cumsum(grp_first_sorted) - 1
    pos_sorted = np.arange(n_sorted, dtype=np.int64)
    # candidate = my own write positions, shifted by one so each ref sees
    # only *earlier* writes, then forward-filled within the group
    cand = np.where(w_sorted, pos_sorted, np.int64(-1))
    cand_prev = np.concatenate(([np.int64(-1)], cand[:-1]))
    cand_prev[grp_first_sorted] = -1
    biased = np.where(cand_prev >= 0, cand_prev + group_id * n_sorted, np.int64(-1))
    run = np.maximum.accumulate(biased)
    valid_sorted = run >= group_id * n_sorted
    last_write_pos = np.where(valid_sorted, run - group_id * n_sorted, 0)

    foreign_refs_sorted = foreign_refs_before[by_lp]
    undisturbed_sorted = valid_sorted & (
        foreign_refs_sorted == foreign_refs_sorted[last_write_pos]
    )
    silent = np.empty(n, dtype=bool)
    silent[by_lp] = w_sorted & undisturbed_sorted
    word_writes = writes & ~silent
    stats.word_write_bytes = int(word_writes.sum()) * WORD_BYTES

    stats.n_read_refs = int((~writes).sum())
    stats.n_write_refs = int(writes.sum())
    # Invalidation events ~ word writes that had at least one prior
    # foreign reference (someone could hold a copy); an upper bound that
    # is exact when sharers never self-evict (infinite caches).
    stats.n_invalidation_events = int(
        (word_writes & (foreign_refs_before > 0)).sum()
    )
    return stats


def simulate_trace_reference_level(
    trace: ReferenceTrace, n_procs: int, address_map: AddressMap
) -> CoherenceStats:
    """Replay *trace* at individual-reference granularity.

    Computes the paper's three §5.2 traffic components (cold fetches,
    invalidation refetches, word writes).  Write-back flush bytes are not
    modelled at this granularity (no closed analytic form); compare
    against the burst simulators' non-writeback components.
    """
    if n_procs < 1 or n_procs > 63:
        raise CoherenceError("n_procs must be in [1, 63]")
    words, procs, writes = expand_trace(trace)
    if len(procs) and int(procs.max()) >= n_procs:
        raise CoherenceError("trace references a processor >= n_procs")
    return analyze_references(words, procs, writes, address_map)
