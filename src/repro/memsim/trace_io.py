"""Reference-trace file I/O.

Tango-era memory traces were files consumed by downstream cache
simulators (dinero and friends).  This module gives the in-memory
:class:`~repro.memsim.trace.ReferenceTrace` the same workflow:

- :func:`save_trace` / :func:`load_trace` — a compact ``.npz`` container
  holding the burst table (time, proc, write flag, burst offsets) and the
  concatenated cell indices; lossless and fast;
- :func:`export_dinero` — a classic three-column text trace (``label
  address`` per reference, label 0 = read, 1 = write), one line per
  *individual* cell reference, for feeding external cache simulators.

The ``.npz`` round trip preserves burst structure exactly (the coherence
simulators depend on burst-level deduplication); the dinero export
flattens bursts into per-reference records and is one-way.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..errors import CoherenceError
from .addressing import WORD_BYTES
from .trace import ReferenceTrace

__all__ = ["save_trace", "load_trace", "export_dinero"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_trace(trace: ReferenceTrace, path: PathLike) -> None:
    """Write *trace* to an ``.npz`` file (lossless)."""
    records = trace.records
    times = np.array([r.time for r in records], dtype=np.float64)
    procs = np.array([r.proc for r in records], dtype=np.int32)
    writes = np.array([r.is_write for r in records], dtype=bool)
    lengths = np.array([r.n_refs for r in records], dtype=np.int64)
    offsets = np.zeros(len(records) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    cells = (
        np.concatenate([r.flat_cells for r in records])
        if records
        else np.empty(0, dtype=np.int64)
    )
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        times=times,
        procs=procs,
        writes=writes,
        offsets=offsets,
        cells=cells,
    )


def load_trace(path: PathLike) -> ReferenceTrace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        if int(data["version"]) != _FORMAT_VERSION:
            raise CoherenceError(
                f"unsupported trace format version {int(data['version'])}"
            )
        trace = ReferenceTrace()
        offsets = data["offsets"]
        cells = data["cells"]
        for i in range(len(data["times"])):
            trace.add(
                float(data["times"][i]),
                int(data["procs"][i]),
                bool(data["writes"][i]),
                cells[offsets[i] : offsets[i + 1]].copy(),
            )
        return trace


def export_dinero(trace: ReferenceTrace, path: PathLike) -> int:
    """Write a dinero-style ``label address`` text trace; returns the
    number of reference lines written.

    References appear in global time order; byte addresses are the cell's
    word address (4 bytes per cost-array entry).
    """
    n = 0
    with open(Path(path), "w") as handle:
        for record in trace.sorted_records():
            label = 1 if record.is_write else 0
            for cell in record.flat_cells:
                handle.write(f"{label} {int(cell) * WORD_BYTES:x}\n")
                n += 1
    return n
