"""Reference-trace file I/O.

Tango-era memory traces were files consumed by downstream cache
simulators (dinero and friends).  This module gives the in-memory
:class:`~repro.memsim.trace.ReferenceTrace` the same workflow:

- :func:`save_trace` / :func:`load_trace` — a compact ``.npz`` container
  holding the burst table (time, proc, write flag, burst offsets) and the
  concatenated cell indices; lossless and fast;
- :func:`save_trace_stream` / :func:`open_trace_stream` /
  :func:`iter_trace_chunks` — a flat binary container laid out for
  *streaming*: records are pre-sorted into global replay order at save
  time and each column lives at a fixed file offset, so a reader seeks
  and loads any record-aligned window without materializing the rest.
  :func:`iter_trace_chunks` also accepts an in-memory
  :class:`~repro.memsim.trace.ReferenceTrace`, chunking it the same way,
  so replay code is source-agnostic;
- :func:`export_dinero` — a classic three-column text trace (``label
  address`` per reference, label 0 = read, 1 = write), one line per
  *individual* cell reference, for feeding external cache simulators.

The ``.npz`` round trip preserves burst structure exactly (the coherence
simulators depend on burst-level deduplication); the dinero export
flattens bursts into per-reference records and is one-way.  Chunk
boundaries always fall on record boundaries — the coherence engines
deduplicate lines *within* a record, so splitting one would change
results — and chunking is invisible in the replayed statistics (the
hypothesis tests fuzz this with random chunk sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from ..errors import CoherenceError
from .addressing import WORD_BYTES
from .trace import ReferenceTrace

__all__ = [
    "TraceChunk",
    "export_dinero",
    "iter_trace_chunks",
    "load_trace",
    "load_trace_stream",
    "open_trace_stream",
    "save_trace",
    "save_trace_stream",
]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

#: Stream container magic ("LocusRoute Trace Stream").
STREAM_MAGIC = b"LRTS"
_STREAM_VERSION = 1
_STREAM_HEADER_BYTES = 4 + 4 + 8 + 8  # magic, version, n_records, n_refs

#: Default chunk budget: individual cell references per yielded chunk.
#: ~256k references keeps the working set a few MB regardless of trace
#: length while amortizing per-chunk numpy overhead.
DEFAULT_CHUNK_REFS = 1 << 18

#: Record-table probe window for the file reader (records per seek).
_PROBE_RECORDS = 1 << 16


@dataclass(frozen=True)
class TraceChunk:
    """A record-aligned slice of a trace, in global replay order.

    ``offsets`` are chunk-local burst offsets (``offsets[0] == 0``;
    burst ``i`` owns ``cells[offsets[i]:offsets[i + 1]]``), so a chunk
    is self-contained: replaying the sequence of chunks visits exactly
    the records of the whole trace, in the same order, with the same
    burst structure.
    """

    times: np.ndarray  #: float64, per record
    procs: np.ndarray  #: int32, per record
    writes: np.ndarray  #: bool, per record
    offsets: np.ndarray  #: int64, per record + 1 (chunk-local)
    cells: np.ndarray  #: int64, concatenated burst cells

    @property
    def n_records(self) -> int:
        return int(self.procs.size)

    @property
    def n_references(self) -> int:
        return int(self.cells.size)


def save_trace(trace: ReferenceTrace, path: PathLike) -> None:
    """Write *trace* to an ``.npz`` file (lossless)."""
    records = trace.records
    times = np.array([r.time for r in records], dtype=np.float64)
    procs = np.array([r.proc for r in records], dtype=np.int32)
    writes = np.array([r.is_write for r in records], dtype=bool)
    lengths = np.array([r.n_refs for r in records], dtype=np.int64)
    offsets = np.zeros(len(records) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    cells = (
        np.concatenate([r.flat_cells for r in records])
        if records
        else np.empty(0, dtype=np.int64)
    )
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        times=times,
        procs=procs,
        writes=writes,
        offsets=offsets,
        cells=cells,
    )


def load_trace(path: PathLike) -> ReferenceTrace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        if int(data["version"]) != _FORMAT_VERSION:
            raise CoherenceError(
                f"unsupported trace format version {int(data['version'])}"
            )
        trace = ReferenceTrace()
        offsets = data["offsets"]
        cells = data["cells"]
        for i in range(len(data["times"])):
            trace.add(
                float(data["times"][i]),
                int(data["procs"][i]),
                bool(data["writes"][i]),
                cells[offsets[i] : offsets[i + 1]].copy(),
            )
        return trace


def save_trace_stream(trace: ReferenceTrace, path: PathLike) -> int:
    """Write *trace* as a flat streaming container; returns bytes written.

    Records are stored in global ``(time, append sequence)`` replay
    order — the sort is paid once here so readers can consume the file
    strictly sequentially.  Layout (all little-endian, after a 24-byte
    header)::

        times    float64[n]
        procs    int32[n]
        writes   uint8[n]
        offsets  int64[n + 1]   cumulative reference counts
        cells    int64[offsets[n]]
    """
    records = list(trace.sorted_records())
    n = len(records)
    times = np.array([r.time for r in records], dtype="<f8")
    procs = np.array([r.proc for r in records], dtype="<i4")
    writes = np.array([r.is_write for r in records], dtype=np.uint8)
    offsets = np.zeros(n + 1, dtype="<i8")
    np.cumsum([r.n_refs for r in records], out=offsets[1:])
    with open(Path(path), "wb") as fh:
        fh.write(STREAM_MAGIC)
        fh.write(np.uint32(_STREAM_VERSION).tobytes())
        fh.write(np.int64(n).tobytes())
        fh.write(np.int64(int(offsets[-1])).tobytes())
        fh.write(times.tobytes())
        fh.write(procs.tobytes())
        fh.write(writes.tobytes())
        fh.write(offsets.tobytes())
        for r in records:
            fh.write(r.flat_cells.astype("<i8").tobytes())
        return fh.tell()


def open_trace_stream(
    path: PathLike, *, chunk_refs: int = DEFAULT_CHUNK_REFS
) -> Iterator[TraceChunk]:
    """Stream a :func:`save_trace_stream` file as :class:`TraceChunk`\\ s.

    Peak memory is bounded by ``chunk_refs`` (plus a fixed record-table
    probe window), independent of the trace length: each column is read
    by seeking to its offset window, never whole.
    """
    if chunk_refs < 1:
        raise CoherenceError("chunk_refs must be positive")
    with open(Path(path), "rb") as fh:
        magic = fh.read(4)
        if magic != STREAM_MAGIC:
            raise CoherenceError(f"not a trace stream (bad magic {magic!r})")
        version = int(np.frombuffer(fh.read(4), dtype="<u4")[0])
        if version != _STREAM_VERSION:
            raise CoherenceError(f"unsupported trace stream version {version}")
        n, n_refs = (int(v) for v in np.frombuffer(fh.read(16), dtype="<i8"))
        times_base = _STREAM_HEADER_BYTES
        procs_base = times_base + 8 * n
        writes_base = procs_base + 4 * n
        offsets_base = writes_base + n
        cells_base = offsets_base + 8 * (n + 1)

        def read(base: int, dtype: str, itemsize: int, start: int, count: int):
            fh.seek(base + itemsize * start)
            data = np.frombuffer(fh.read(itemsize * count), dtype=dtype)
            if data.size != count:
                raise CoherenceError("truncated trace stream")
            return data

        pos = 0
        while pos < n:
            probe = min(n - pos, _PROBE_RECORDS)
            off = read(offsets_base, "<i8", 8, pos, probe + 1)
            rel = off - off[0]
            k = int(np.searchsorted(rel, chunk_refs, side="right")) - 1
            k = max(1, min(k, probe))
            chunk = TraceChunk(
                times=read(times_base, "<f8", 8, pos, k),
                procs=read(procs_base, "<i4", 4, pos, k).astype(np.int32),
                writes=read(writes_base, "u1", 1, pos, k).astype(bool),
                offsets=rel[: k + 1].astype(np.int64),
                cells=read(cells_base, "<i8", 8, int(off[0]), int(rel[k])).astype(
                    np.int64
                ),
            )
            if int(off[0]) + chunk.n_references > n_refs:
                raise CoherenceError("trace stream offsets exceed reference count")
            yield chunk
            pos += k


def iter_trace_chunks(
    source: Union[ReferenceTrace, PathLike],
    *,
    chunk_refs: int = DEFAULT_CHUNK_REFS,
) -> Iterator[TraceChunk]:
    """Record-aligned chunks of *source*, in global replay order.

    *source* is either an in-memory
    :class:`~repro.memsim.trace.ReferenceTrace` or the path of a
    :func:`save_trace_stream` file.  Both produce the same chunk
    semantics; replayed statistics do not depend on chunk boundaries.
    """
    if not isinstance(source, ReferenceTrace):
        yield from open_trace_stream(source, chunk_refs=chunk_refs)
        return
    if chunk_refs < 1:
        raise CoherenceError("chunk_refs must be positive")
    times: list = []
    procs: list = []
    writes: list = []
    bursts: list = []
    refs = 0

    def flush() -> TraceChunk:
        offsets = np.zeros(len(bursts) + 1, dtype=np.int64)
        np.cumsum([b.size for b in bursts], out=offsets[1:])
        chunk = TraceChunk(
            times=np.array(times, dtype=np.float64),
            procs=np.array(procs, dtype=np.int32),
            writes=np.array(writes, dtype=bool),
            offsets=offsets,
            cells=(
                np.concatenate(bursts)
                if bursts
                else np.empty(0, dtype=np.int64)
            ),
        )
        times.clear(), procs.clear(), writes.clear(), bursts.clear()
        return chunk

    for record in source.sorted_records():
        times.append(record.time)
        procs.append(record.proc)
        writes.append(record.is_write)
        bursts.append(record.flat_cells.astype(np.int64))
        refs += record.n_refs
        if refs >= chunk_refs:
            yield flush()
            refs = 0
    if times:
        yield flush()


def load_trace_stream(path: PathLike) -> ReferenceTrace:
    """Read a :func:`save_trace_stream` file back into memory.

    Records come back in global replay order (the container's order),
    which leaves every replay result identical; the original append
    order is not preserved.
    """
    trace = ReferenceTrace()
    for chunk in open_trace_stream(path):
        for i in range(chunk.n_records):
            trace.add(
                float(chunk.times[i]),
                int(chunk.procs[i]),
                bool(chunk.writes[i]),
                chunk.cells[chunk.offsets[i] : chunk.offsets[i + 1]].copy(),
            )
    return trace


def export_dinero(trace: ReferenceTrace, path: PathLike) -> int:
    """Write a dinero-style ``label address`` text trace; returns the
    number of reference lines written.

    References appear in global time order; byte addresses are the cell's
    word address (4 bytes per cost-array entry).
    """
    n = 0
    with open(Path(path), "w") as handle:
        for record in trace.sorted_records():
            label = 1 if record.is_write else 0
            for cell in record.flat_cells:
                handle.write(f"{label} {int(cell) * WORD_BYTES:x}\n")
                n += 1
    return n
