"""Shared memory substrate: Tango-style reference tracing and
Write-Back-with-Invalidate cache coherence simulation (infinite caches,
configurable line size)."""

from .addressing import WORD_BYTES, AddressMap
from .coherence import WriteBackInvalidate, simulate_trace
from .columnar import ColumnarTrace, simulate_trace_columnar, simulate_trace_streaming
from .stats import CoherenceStats
from .tango import TangoCollector
from .trace import ReferenceTrace, TraceRecord
from .trace_io import (
    TraceChunk,
    export_dinero,
    iter_trace_chunks,
    load_trace,
    load_trace_stream,
    open_trace_stream,
    save_trace,
    save_trace_stream,
)
from .finite_cache import FiniteWriteBackInvalidate, simulate_trace_finite
from .reference_level import analyze_references, expand_trace, simulate_trace_reference_level
from .update_protocol import WriteUpdate, simulate_trace_write_update

__all__ = [
    "WORD_BYTES",
    "AddressMap",
    "WriteBackInvalidate",
    "simulate_trace",
    "ColumnarTrace",
    "simulate_trace_columnar",
    "CoherenceStats",
    "TangoCollector",
    "ReferenceTrace",
    "TraceRecord",
    "WriteUpdate",
    "simulate_trace_write_update",
    "FiniteWriteBackInvalidate",
    "simulate_trace_finite",
    "save_trace",
    "load_trace",
    "save_trace_stream",
    "load_trace_stream",
    "open_trace_stream",
    "iter_trace_chunks",
    "TraceChunk",
    "simulate_trace_streaming",
    "export_dinero",
    "expand_trace",
    "analyze_references",
    "simulate_trace_reference_level",
]
