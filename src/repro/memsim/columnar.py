"""Columnar (vectorised) replay of Write-Back-with-Invalidate traces.

:func:`~repro.memsim.coherence.simulate_trace` walks the trace one access
burst at a time — a Python-level loop whose per-record overhead dominates
the Table 3 cache-line sweep, which replays the *same* trace once per line
size.  This module computes the identical statistics with no per-record
loop at all, in the columnar style of :mod:`repro.memsim.reference_level`:

1. the burst trace is flattened **once** into parallel arrays — the
   concatenated cell stream plus per-record ``(proc, is_write)`` columns
   in global ``(time, append sequence)`` order (:class:`ColumnarTrace`);
2. each replay maps cells to cache lines for its line size and dedupes to
   one *event* per ``(record, line)`` pair — exactly the burst-level
   deduplication the scalar engine performs via
   :meth:`~repro.memsim.addressing.AddressMap.cells_to_lines`;
3. events are grouped by line (lines evolve independently under the
   infinite-cache protocol) and every per-event outcome is derived from
   order statistics over the group: the position of the previous write,
   run-length-encoded same-processor runs (is the line still
   exclusive-dirty?), the previous access by the same ``(line, proc)``
   (miss / cold / refetch classification), and segmented prefix sums of
   read misses (how many sharers does a word write invalidate?).

The derivation mirrors the protocol's state machine exactly, so the
returned :class:`~repro.memsim.stats.CoherenceStats` is **bit-identical**
to the scalar engine's — the scalar engine stays as the differential
oracle (``locusroute verify`` cross-checks the two on every run, and the
hypothesis tests in ``tests/test_memsim_columnar.py`` fuzz the
equivalence on random traces).

Key order statistics (per line group, events indexed ``0..k-1`` in global
order; ``j`` is the position of the last write strictly before event
``i``, or −1):

- ``p ∈ sharers`` before ``i``  ⟺  p's previous event on the line is at
  position ≥ max(j, 0) — a write resets the sharer set to the writer,
  and every read since (each necessarily a miss on first touch) re-adds
  its processor;
- the line is *dirty* before ``i``  ⟺  ``j ≥ 0`` and events ``j..i-1``
  form one same-processor run (the first foreign access after a write is
  always a miss, and every miss on a dirty line flushes it);
- ``|sharers|`` before ``i`` = ``1 + (read misses in (j, i))`` when
  ``j ≥ 0``, else the number of read misses since the group start.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import CoherenceError
from ..obs import telemetry as obs
from .addressing import WORD_BYTES, AddressMap
from .stats import CoherenceStats
from .trace import ReferenceTrace
from .trace_io import DEFAULT_CHUNK_REFS, iter_trace_chunks

__all__ = ["ColumnarTrace", "simulate_trace_columnar", "simulate_trace_streaming"]


def _popcount64(values: np.ndarray) -> np.ndarray:
    """Per-element population count of non-negative int64 values."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(values).astype(np.int32)
    as_bytes = values.astype("<i8").view(np.uint8).reshape(values.size, 8)
    return np.unpackbits(as_bytes, axis=1).sum(axis=1, dtype=np.int32)


@dataclass(frozen=True)
class ColumnarTrace:
    """A burst trace flattened into parallel arrays, in global order.

    Build once with :meth:`from_trace` and replay at any number of cache
    line sizes with :meth:`replay` — the flattening (which walks the
    Python-level record list) is paid a single time per trace, not once
    per line size.
    """

    #: Concatenated flat cell indices of every burst, global order.
    #: ``int32`` — a flat cell index fits easily (grid cells number in the
    #: thousands), and 4-byte columns halve the memory traffic of every
    #: sort and gather in :meth:`replay`.
    cells: np.ndarray
    #: Record id (position in global order) of each cell (``int32``).
    rec_ids: np.ndarray
    #: Per-record referencing processor (``int32``).
    rec_proc: np.ndarray
    #: Per-record read/write flag.
    rec_is_write: np.ndarray
    #: Individual cell references by reads / writes (scalar-engine counts).
    n_read_refs: int
    n_write_refs: int

    @staticmethod
    def from_trace(trace: ReferenceTrace) -> "ColumnarTrace":
        """Flatten *trace* in global ``(time, append sequence)`` order."""
        records = list(trace.sorted_records())
        if not records:
            empty = np.empty(0, dtype=np.int32)
            return ColumnarTrace(empty, empty, empty, empty.astype(bool), 0, 0)
        sizes = np.array([r.n_refs for r in records], dtype=np.int64)
        cells64 = np.concatenate([r.flat_cells for r in records])
        if cells64.size and int(cells64.max()) >= np.iinfo(np.int32).max:
            raise CoherenceError("flat cell index overflows the int32 columns")
        cells = cells64.astype(np.int32)
        rec_ids = np.repeat(np.arange(len(records), dtype=np.int32), sizes)
        rec_proc = np.array([r.proc for r in records], dtype=np.int32)
        rec_is_write = np.array([r.is_write for r in records], dtype=bool)
        n_write_refs = int(sizes[rec_is_write].sum())
        return ColumnarTrace(
            cells=cells,
            rec_ids=rec_ids,
            rec_proc=rec_proc,
            rec_is_write=rec_is_write,
            n_read_refs=int(sizes.sum()) - n_write_refs,
            n_write_refs=n_write_refs,
        )

    # ------------------------------------------------------------------
    def replay(self, n_procs: int, address_map: AddressMap) -> CoherenceStats:
        """Replay through Write-Back-with-Invalidate; return traffic totals.

        Bit-identical to
        :func:`repro.memsim.coherence.simulate_trace` on the trace this
        was built from (the scalar engine is the differential oracle).
        """
        if not (1 <= n_procs <= 63):
            raise CoherenceError("n_procs must be in [1, 63]")
        stats = CoherenceStats(line_size=address_map.line_size)
        if self.cells.size == 0:
            return stats
        if int(self.rec_proc.min()) < 0 or int(self.rec_proc.max()) >= n_procs:
            raise CoherenceError("trace references a processor out of range")
        stats.n_read_refs = self.n_read_refs
        stats.n_write_refs = self.n_write_refs

        lines_all = self.cells // address_map.words_per_line

        # One event per (record, line): a stable sort by line alone gives
        # (line, record) order because rec_ids is non-decreasing in the
        # flattened stream; ties then break by stream position, which is
        # record order.  Events come out grouped by line, in global record
        # order within each group.
        order = np.argsort(lines_all, kind="stable")
        l_sorted = lines_all[order]
        r_sorted = self.rec_ids[order]
        keep = np.empty(l_sorted.size, dtype=bool)
        keep[0] = True
        np.logical_or(
            l_sorted[1:] != l_sorted[:-1],
            r_sorted[1:] != r_sorted[:-1],
            out=keep[1:],
        )
        if keep.all():
            # Common at small line sizes (each record's cells are already
            # distinct lines): skip two large boolean-index copies.
            ev_line, ev_rec = l_sorted, r_sorted
        else:
            ev_line = l_sorted[keep]
            ev_rec = r_sorted[keep]
        ev_proc = self.rec_proc[ev_rec]
        ev_write = self.rec_is_write[ev_rec]
        m = ev_line.size
        idx = np.arange(m, dtype=np.int32)
        obs.incr("sim.coherence.columnar_events", m)

        new_line = np.empty(m, dtype=bool)
        new_line[0] = True
        np.not_equal(ev_line[1:], ev_line[:-1], out=new_line[1:])
        seg_start = np.where(new_line, idx, np.int32(0))
        np.maximum.accumulate(seg_start, out=seg_start)

        # j: position of the last write strictly before each event within
        # its line group (-1 if none).  A running max of write positions
        # never leaks across groups: earlier groups' indices fall below
        # the group start.
        ff = np.where(ev_write, idx, np.int32(-1))
        np.maximum.accumulate(ff, out=ff)
        j = np.empty(m, dtype=np.int32)
        j[0] = -1
        j[1:] = ff[:-1]
        np.copyto(j, np.int32(-1), where=j < seg_start)

        # Previous event by the same (line, proc), or -1: classifies
        # misses as cold vs refetch and decides sharer membership.
        # MAX_PROCS is 63, so (line, proc) packs into ``line * 64 + proc``
        # — one stable int sort instead of a two-key lexsort — whenever
        # the packed key cannot overflow (it never does for real grids;
        # the lexsort fallback keeps huge synthetic traces correct).
        max_line = int(l_sorted[-1])
        if max_line < (1 << 24):
            key = ev_line << np.int32(6)
            key |= ev_proc
            by_lp = np.argsort(key, kind="stable")
            lp_key = key[by_lp]
            same_lp = np.empty(m, dtype=bool)
            same_lp[0] = False
            np.equal(lp_key[1:], lp_key[:-1], out=same_lp[1:])
        else:
            by_lp = np.lexsort((ev_proc, ev_line))
            lp_line = ev_line[by_lp]
            lp_proc = ev_proc[by_lp]
            same_lp = np.empty(m, dtype=bool)
            same_lp[0] = False
            same_lp[1:] = (lp_line[1:] == lp_line[:-1]) & (
                lp_proc[1:] == lp_proc[:-1]
            )
        prev_in_sorted = np.empty(m, dtype=np.int64)
        prev_in_sorted[0] = -1
        prev_in_sorted[1:] = by_lp[:-1]
        prev_lp = np.empty(m, dtype=np.int32)
        prev_lp[by_lp] = np.where(same_lp, prev_in_sorted, np.int64(-1)).astype(
            np.int32
        )

        # Sharer membership: a write resets the sharer set to the writer;
        # reads since re-add their processor.  So p holds the line iff its
        # previous access is at or after the last write.
        jpos = j >= np.int32(0)
        sharers_has_p = prev_lp >= np.maximum(j, np.int32(0))
        miss = ~sharers_has_p

        # Dirty-line tracking via run-length encoding of same-processor
        # runs: the line written at j is still dirty at i iff events
        # j..i-1 are one run by the writer (the first foreign access
        # after a write misses and flushes).
        run_break = new_line.copy()
        run_break[1:] |= ev_proc[1:] != ev_proc[:-1]
        run_start = np.where(run_break, idx, np.int32(0))
        np.maximum.accumulate(run_start, out=run_start)
        run_start_prev = np.empty(m, dtype=np.int32)
        run_start_prev[0] = 0
        run_start_prev[1:] = run_start[:-1]
        prev_proc = np.empty(m, dtype=np.int32)
        prev_proc[0] = -1
        prev_proc[1:] = ev_proc[:-1]
        dirty_alive = jpos & (run_start_prev <= j)
        dirty_by_me = dirty_alive & (ev_proc == prev_proc)

        read_miss = miss & ~ev_write
        cold = read_miss & (prev_lp < 0)
        writeback = miss & dirty_alive
        word_write = ev_write & ~dirty_by_me

        # Sharer counts before each event, from segmented prefix sums of
        # read misses (each read miss adds exactly one sharer; a write
        # resets the count to one).
        rm = read_miss.astype(np.int32)
        cum_excl = np.cumsum(rm, dtype=np.int32)
        cum_excl -= rm
        base = cum_excl[np.where(jpos, j, seg_start)]
        n_sharers = jpos.astype(np.int32) + cum_excl - base
        others = n_sharers - sharers_has_p.astype(np.int32)
        inval = word_write & (others > 0)

        ls = address_map.line_size
        n_cold = int(np.count_nonzero(cold))
        n_read_miss = int(np.count_nonzero(read_miss))
        stats.cold_fetch_bytes = n_cold * ls
        stats.refetch_bytes = (n_read_miss - n_cold) * ls
        stats.write_miss_fetch_bytes = int(np.count_nonzero(ev_write & miss)) * ls
        stats.writeback_bytes = int(np.count_nonzero(writeback)) * ls
        stats.word_write_bytes = int(np.count_nonzero(word_write)) * WORD_BYTES
        stats.n_invalidation_events = int(np.count_nonzero(inval))
        stats.n_copies_invalidated = int(others[inval].sum())
        return stats


def simulate_trace_columnar(
    trace: Union[ReferenceTrace, ColumnarTrace],
    n_procs: int,
    address_map: AddressMap,
) -> CoherenceStats:
    """Vectorised drop-in for :func:`repro.memsim.coherence.simulate_trace`.

    Accepts either a :class:`~repro.memsim.trace.ReferenceTrace` or an
    already-flattened :class:`ColumnarTrace` (pass the latter when
    replaying the same trace at several line sizes — the Table 3 sweep —
    so the flattening is paid once).
    """
    columnar = (
        trace
        if isinstance(trace, ColumnarTrace)
        else ColumnarTrace.from_trace(trace)
    )
    return columnar.replay(n_procs, address_map)


def simulate_trace_streaming(
    source: Union[ReferenceTrace, str, Path],
    n_procs: int,
    address_map: AddressMap,
    *,
    chunk_refs: int = DEFAULT_CHUNK_REFS,
) -> CoherenceStats:
    """Replay a trace in bounded memory; bit-identical to the in-memory
    engines.

    *source* is an in-memory :class:`~repro.memsim.trace.ReferenceTrace`
    or the path of a :func:`~repro.memsim.trace_io.save_trace_stream`
    file.  The trace is consumed in record-aligned chunks of about
    *chunk_refs* references (:func:`~repro.memsim.trace_io.iter_trace_chunks`),
    so peak memory is ``O(chunk_refs + address_map.n_lines)`` —
    independent of trace length.

    Within a chunk the replay runs the same order statistics as
    :meth:`ColumnarTrace.replay`; chunk boundaries are bridged by three
    carried per-line arrays that summarize everything earlier events
    can influence:

    - ``carry_mask`` — bitmask of current sharers (procs whose last
      access is at or after the line's last write);
    - ``carry_dirty`` — owning proc while the line is exclusive-dirty,
      else −1 (alive exactly while the events since the last write form
      one same-processor run by the writer);
    - ``carry_ever`` — bitmask of procs that ever touched the line
      (cold-miss vs refetch classification).

    Per-event outcomes fall back to the carried values only where the
    within-chunk statistics see no prior write (``j < 0``); the
    hypothesis tests fuzz bit-identity against the scalar engine across
    random chunk sizes, including ``chunk_refs=1``.
    """
    if not (1 <= n_procs <= 63):
        raise CoherenceError("n_procs must be in [1, 63]")
    stats = CoherenceStats(line_size=address_map.line_size)
    ls = address_map.line_size
    n_lines = address_map.n_lines
    carry_mask = np.zeros(n_lines, dtype=np.int64)
    carry_dirty = np.full(n_lines, -1, dtype=np.int32)
    carry_ever = np.zeros(n_lines, dtype=np.int64)

    for chunk in iter_trace_chunks(source, chunk_refs=chunk_refs):
        if chunk.cells.size == 0:
            continue
        procs = chunk.procs
        if int(procs.min()) < 0 or int(procs.max()) >= n_procs:
            raise CoherenceError("trace references a processor out of range")
        sizes = np.diff(chunk.offsets)
        n_write_refs = int(sizes[chunk.writes].sum())
        stats.n_write_refs += n_write_refs
        stats.n_read_refs += int(sizes.sum()) - n_write_refs

        lines_all = chunk.cells // address_map.words_per_line
        if int(lines_all.max()) >= n_lines or int(lines_all.min()) < 0:
            raise CoherenceError("trace cell outside the address map")

        # Event extraction: one event per (record, line), grouped by
        # line in global record order — identical to ColumnarTrace.
        rec_ids = np.repeat(np.arange(procs.size, dtype=np.int32), sizes)
        order = np.argsort(lines_all, kind="stable")
        l_sorted = lines_all[order]
        r_sorted = rec_ids[order]
        keep = np.empty(l_sorted.size, dtype=bool)
        keep[0] = True
        np.logical_or(
            l_sorted[1:] != l_sorted[:-1],
            r_sorted[1:] != r_sorted[:-1],
            out=keep[1:],
        )
        if keep.all():
            ev_line, ev_rec = l_sorted, r_sorted
        else:
            ev_line = l_sorted[keep]
            ev_rec = r_sorted[keep]
        ev_proc = procs[ev_rec]
        ev_write = chunk.writes[ev_rec]
        m = ev_line.size
        idx = np.arange(m, dtype=np.int32)
        obs.incr("sim.coherence.columnar_events", m)
        obs.incr("sim.coherence.stream_chunks")

        new_line = np.empty(m, dtype=bool)
        new_line[0] = True
        np.not_equal(ev_line[1:], ev_line[:-1], out=new_line[1:])
        seg_start = np.where(new_line, idx, np.int32(0))
        np.maximum.accumulate(seg_start, out=seg_start)

        # j: last write strictly before each event, within the chunk.
        ff = np.where(ev_write, idx, np.int32(-1))
        np.maximum.accumulate(ff, out=ff)
        j = np.empty(m, dtype=np.int32)
        j[0] = -1
        j[1:] = ff[:-1]
        np.copyto(j, np.int32(-1), where=j < seg_start)
        jpos = j >= np.int32(0)

        # Previous event by the same (line, proc) within the chunk.
        key = (ev_line.astype(np.int64) << np.int64(6)) | ev_proc
        by_lp = np.argsort(key, kind="stable")
        lp_key = key[by_lp]
        same_lp = np.empty(m, dtype=bool)
        same_lp[0] = False
        np.equal(lp_key[1:], lp_key[:-1], out=same_lp[1:])
        prev_in_sorted = np.empty(m, dtype=np.int64)
        prev_in_sorted[0] = -1
        prev_in_sorted[1:] = by_lp[:-1]
        prev_lp = np.empty(m, dtype=np.int32)
        prev_lp[by_lp] = np.where(same_lp, prev_in_sorted, np.int64(-1)).astype(
            np.int32
        )

        # Carried state, gathered per event; consulted only where the
        # chunk has no earlier write on the line (~jpos).
        c_mask = carry_mask[ev_line]
        c_dirty = carry_dirty[ev_line]
        c_ever = carry_ever[ev_line]
        pbit = np.int64(1) << ev_proc.astype(np.int64)

        sharers_has_p = prev_lp >= np.maximum(j, np.int32(0))
        sharers_has_p |= ~jpos & ((c_mask & pbit) != 0)
        miss = ~sharers_has_p

        run_break = new_line.copy()
        run_break[1:] |= ev_proc[1:] != ev_proc[:-1]
        run_start = np.where(run_break, idx, np.int32(0))
        np.maximum.accumulate(run_start, out=run_start)
        run_start_prev = np.empty(m, dtype=np.int32)
        run_start_prev[0] = 0
        run_start_prev[1:] = run_start[:-1]
        prev_proc = np.empty(m, dtype=np.int32)
        prev_proc[0] = -1
        prev_proc[1:] = ev_proc[:-1]

        # Dirty before event i: a within-chunk write followed by one
        # same-proc run, or a carried dirty line whose owner's run is
        # unbroken through the chunk boundary up to i.
        at_start = idx == seg_start
        dirty_alive = jpos & (run_start_prev <= j)
        dirty_alive |= (
            ~jpos
            & (c_dirty >= 0)
            & (at_start | ((run_start_prev <= seg_start) & (prev_proc == c_dirty)))
        )
        dirty_by_me = dirty_alive & (ev_proc == np.where(at_start, c_dirty, prev_proc))

        read_miss = miss & ~ev_write
        cold = read_miss & (prev_lp < 0) & ((c_ever & pbit) == 0)
        writeback = miss & dirty_alive
        word_write = ev_write & ~dirty_by_me

        # Sharer counts: segmented prefix sums of read misses, seeded
        # with the carried sharer count where the chunk has no write.
        rm = read_miss.astype(np.int32)
        cum_excl = np.cumsum(rm, dtype=np.int32)
        cum_excl -= rm
        base = cum_excl[np.where(jpos, j, seg_start)]
        seed = np.where(jpos, np.int32(1), _popcount64(c_mask))
        n_sharers = seed + cum_excl - base
        others = n_sharers - sharers_has_p.astype(np.int32)
        inval = word_write & (others > 0)

        n_cold = int(np.count_nonzero(cold))
        n_read_miss = int(np.count_nonzero(read_miss))
        stats.cold_fetch_bytes += n_cold * ls
        stats.refetch_bytes += (n_read_miss - n_cold) * ls
        stats.write_miss_fetch_bytes += int(np.count_nonzero(ev_write & miss)) * ls
        stats.writeback_bytes += int(np.count_nonzero(writeback)) * ls
        stats.word_write_bytes += int(np.count_nonzero(word_write)) * WORD_BYTES
        stats.n_invalidation_events += int(np.count_nonzero(inval))
        stats.n_copies_invalidated += int(others[inval].sum())

        # Roll the carried state forward over this chunk's line groups.
        starts = np.flatnonzero(new_line)
        glines = ev_line[starts]
        group_id = np.cumsum(new_line) - 1
        jl = np.maximum.reduceat(np.where(ev_write, idx, np.int32(-1)), starts)
        after_lw = idx > jl[group_id]
        or_after = np.bitwise_or.reduceat(np.where(after_lw, pbit, np.int64(0)), starts)
        or_all = np.bitwise_or.reduceat(pbit, starts)
        ends = np.empty(starts.size, dtype=np.int64)
        ends[:-1] = starts[1:] - 1
        ends[-1] = m - 1
        rs_last = run_start[ends]
        rp_last = ev_proc[ends]
        jlpos = jl >= 0
        writer = ev_proc[np.maximum(jl, 0)]
        writer_bit = np.int64(1) << writer.astype(np.int64)
        cd_group = carry_dirty[glines]
        carry_mask[glines] = np.where(
            jlpos, writer_bit | or_after, carry_mask[glines] | or_after
        )
        carry_ever[glines] |= or_all
        carry_dirty[glines] = np.where(
            jlpos,
            np.where(rs_last <= jl, rp_last, np.int32(-1)),
            np.where(
                (cd_group >= 0) & (rs_last == starts) & (rp_last == cd_group),
                cd_group,
                np.int32(-1),
            ),
        )
    return stats
