"""Shared-memory address mapping for the cost array.

The Tango traces record *shared data* references, which for LocusRoute
means cost array accesses (§2.2, §5.2).  The cost array is laid out
row-major in shared memory with :data:`WORD_BYTES` bytes per entry (a C
``int`` on the Encore Multimax).  Cache lines are ``line_size`` bytes,
``line_size >= WORD_BYTES`` and a power of two, so a line holds
``line_size / WORD_BYTES`` horizontally adjacent entries — which is what
creates the false-sharing / spatial-locality effects Table 3 measures.
"""

from __future__ import annotations

import numpy as np

from ..errors import CoherenceError

__all__ = ["WORD_BYTES", "AddressMap"]

#: Bytes per cost array entry in shared memory (32-bit int).
WORD_BYTES = 4


class AddressMap:
    """Maps flat shared-word indices to cache line numbers.

    Words ``[0, n_channels * n_grids)`` are the cost array; callers may
    reserve ``extra_words`` beyond it for other shared structures (the
    scheduler scalars and wire records of
    :class:`~repro.memsim.tango.SharedLayout`).
    """

    def __init__(
        self, n_channels: int, n_grids: int, line_size: int, extra_words: int = 0
    ) -> None:
        if line_size < WORD_BYTES or (line_size & (line_size - 1)) != 0:
            raise CoherenceError(
                f"line size must be a power of two >= {WORD_BYTES}, got {line_size}"
            )
        if extra_words < 0:
            raise CoherenceError("extra_words must be non-negative")
        self.n_channels = n_channels
        self.n_grids = n_grids
        self.line_size = line_size
        self.words_per_line = line_size // WORD_BYTES
        total_words = n_channels * n_grids + extra_words
        self.n_lines = -(-(total_words * WORD_BYTES) // line_size)

    def cell_address(self, flat_cells: np.ndarray) -> np.ndarray:
        """Byte addresses of flat cell indices."""
        return flat_cells.astype(np.int64) * WORD_BYTES

    def cells_to_lines(self, flat_cells: np.ndarray) -> np.ndarray:
        """Unique cache line numbers touched by *flat_cells*."""
        lines = flat_cells.astype(np.int64) // self.words_per_line
        return np.unique(lines)

    def rect_to_lines(
        self, c_lo: int, x_lo: int, c_hi: int, x_hi: int
    ) -> np.ndarray:
        """Unique lines covering an inclusive cell rectangle.

        A row's columns ``x_lo..x_hi`` occupy a contiguous word range, so
        each row contributes a contiguous line range; rows are unioned.
        """
        if c_lo > c_hi or x_lo > x_hi:
            raise CoherenceError("degenerate rectangle")
        parts = []
        for c in range(c_lo, c_hi + 1):
            first = (c * self.n_grids + x_lo) // self.words_per_line
            last = (c * self.n_grids + x_hi) // self.words_per_line
            parts.append(np.arange(first, last + 1, dtype=np.int64))
        return np.unique(np.concatenate(parts))
