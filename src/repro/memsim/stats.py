"""Coherence bus traffic accounting (the Table 3 / §5.2 metric).

Paper §5.2 enumerates the three traffic components of the shared memory
approach under Write-Back-with-Invalidate:

1. cold fetches — "the processor's initial access to a location always
   results in a miss, and brings the line into the cache";
2. word writes — "the first write to a clean location causes a word write
   on the shared bus", which is also the snoop that invalidates other
   copies;
3. refetches — "once a line has been invalidated by a cache, it may need
   the line again.  This leads to refetches of the data from memory."

:class:`CoherenceStats` tracks each component in bytes, plus invalidation
counts and the read/write attribution used for the paper's ">80 % of the
bytes ... are caused by writes" observation (write-caused = word writes +
write-miss fetches + invalidation-induced refetches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CoherenceStats"]


@dataclass
class CoherenceStats:
    """Byte and event totals from one coherence simulation."""

    line_size: int
    cold_fetch_bytes: int = 0
    refetch_bytes: int = 0
    word_write_bytes: int = 0
    write_miss_fetch_bytes: int = 0
    writeback_bytes: int = 0  #: dirty lines flushed when another cache takes them
    n_invalidation_events: int = 0
    n_copies_invalidated: int = 0
    n_read_refs: int = 0
    n_write_refs: int = 0

    @property
    def total_bytes(self) -> int:
        """All bus data traffic in bytes.

        Includes the write-back flushes a dirty line suffers when another
        cache fetches it (classic Archibald & Baer accounting: a dirty
        miss is a flush-to-memory plus a fetch, two bus data transfers).
        """
        return (
            self.cold_fetch_bytes
            + self.refetch_bytes
            + self.word_write_bytes
            + self.write_miss_fetch_bytes
            + self.writeback_bytes
        )

    @property
    def mbytes(self) -> float:
        """Total traffic in megabytes (10^6 bytes, the paper's unit)."""
        return self.total_bytes / 1e6

    @property
    def write_caused_bytes(self) -> int:
        """Bytes attributable to writes: the word writes themselves, the
        fetches write misses trigger, the refetches forced by
        write-induced invalidations, and the flushes of dirty (written)
        lines."""
        return (
            self.word_write_bytes
            + self.write_miss_fetch_bytes
            + self.refetch_bytes
            + self.writeback_bytes
        )

    @property
    def write_caused_fraction(self) -> float:
        """Fraction of all bytes caused by writes (paper: > 0.8)."""
        total = self.total_bytes
        return self.write_caused_bytes / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict summary for JSON dumps and tables."""
        return {
            "line_size": self.line_size,
            "total_bytes": self.total_bytes,
            "mbytes": self.mbytes,
            "cold_fetch_bytes": self.cold_fetch_bytes,
            "refetch_bytes": self.refetch_bytes,
            "word_write_bytes": self.word_write_bytes,
            "write_miss_fetch_bytes": self.write_miss_fetch_bytes,
            "writeback_bytes": self.writeback_bytes,
            "n_invalidation_events": self.n_invalidation_events,
            "n_copies_invalidated": self.n_copies_invalidated,
            "n_read_refs": self.n_read_refs,
            "n_write_refs": self.n_write_refs,
            "write_caused_fraction": self.write_caused_fraction,
        }
