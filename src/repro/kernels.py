"""Global switch between vectorised and reference simulation kernels.

Three hot paths have two interchangeable implementations each — a scalar
*reference* engine (the differential oracle, written to mirror the
protocol/algorithm description directly) and a *vectorized* engine
(columnar NumPy, bit-identical output):

==============  ================================  ===========================
hot path        reference                         vectorized
==============  ================================  ===========================
coherence       ``memsim.coherence``              ``memsim.columnar``
two-bend route  ``route.twobend.route_segment``   per-route prefix tables
sweep dispatch  per-line-size scalar replay       shared ``ColumnarTrace``
==============  ================================  ===========================

The vectorized engines are the default.  The reference engines remain
load-bearing: ``locusroute verify`` replays both and reports any
divergence, the hypothesis suites fuzz the equivalence, and
``benchmarks/bench_perf_suite.py`` measures whole-run speedups by timing
the same experiment under each mode.

Use :func:`use_kernels` as a context manager for scoped switches (the
bench suite, tests) and :func:`set_kernels` for process-wide selection
(the ``--kernels`` CLI flag).  The switch is read at call time by the
dispatching functions, so it also applies inside already-constructed
simulators.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .errors import ReproError

__all__ = ["KERNEL_MODES", "active_kernels", "set_kernels", "use_kernels"]

KERNEL_MODES = ("vectorized", "reference")

_active = "vectorized"


def active_kernels() -> str:
    """Currently selected kernel mode (``vectorized`` or ``reference``)."""
    return _active


def set_kernels(mode: str) -> None:
    """Select the kernel mode process-wide."""
    global _active
    if mode not in KERNEL_MODES:
        raise ReproError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}"
        )
    _active = mode


@contextmanager
def use_kernels(mode: str) -> Iterator[None]:
    """Scoped kernel-mode switch; restores the previous mode on exit."""
    previous = _active
    set_kernels(mode)
    try:
        yield
    finally:
        set_kernels(previous)
