"""Grid substrate: cost array, delta array, bounding boxes, owned regions.

These are the data structures at the heart of both parallel LocusRoute
implementations — the shared cost array (§3), the per-processor delta
array (§4.1), and the Figure-2 division of the array into owned regions.
"""

from .bbox import BBox
from .cost_array import CostArray
from .delta import DeltaArray
from .ownership import HashRing, OwnershipMap
from .regions import RegionMap, proc_grid_shape

__all__ = [
    "BBox",
    "CostArray",
    "DeltaArray",
    "HashRing",
    "OwnershipMap",
    "RegionMap",
    "proc_grid_shape",
]
