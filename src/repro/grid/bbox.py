"""Inclusive 2-D bounding boxes over the cost array grid.

Update packets in the message passing implementation carry "the bounding
box of all the changes made within [a] region, as well as the coordinates
of the bounding box being sent" (paper §4.3.1).  :class:`BBox` is that
rectangle: inclusive channel and grid-column bounds, with the couple of
operations the protocol machinery needs (union, intersection, area,
slicing a NumPy array).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import GridError

__all__ = ["BBox"]


@dataclass(frozen=True, order=True)
class BBox:
    """An inclusive rectangle ``[c_lo..c_hi] x [x_lo..x_hi]`` of grid cells.

    ``c`` indexes channels (rows), ``x`` indexes routing grids (columns),
    matching cost-array axes.
    """

    c_lo: int
    x_lo: int
    c_hi: int
    x_hi: int

    def __post_init__(self) -> None:
        if self.c_lo > self.c_hi or self.x_lo > self.x_hi:
            raise GridError(f"degenerate bbox {self!r}")
        if min(self.c_lo, self.x_lo) < 0:
            raise GridError(f"negative bbox coordinates {self!r}")

    @property
    def height(self) -> int:
        """Number of channel rows covered (inclusive)."""
        return self.c_hi - self.c_lo + 1

    @property
    def width(self) -> int:
        """Number of grid columns covered (inclusive)."""
        return self.x_hi - self.x_lo + 1

    @property
    def area(self) -> int:
        """Number of cells covered."""
        return self.height * self.width

    def contains(self, c: int, x: int) -> bool:
        """True if cell ``(c, x)`` lies inside the box."""
        return self.c_lo <= c <= self.c_hi and self.x_lo <= x <= self.x_hi

    def union(self, other: "BBox") -> "BBox":
        """Smallest box covering both boxes."""
        return BBox(
            min(self.c_lo, other.c_lo),
            min(self.x_lo, other.x_lo),
            max(self.c_hi, other.c_hi),
            max(self.x_hi, other.x_hi),
        )

    def intersect(self, other: "BBox") -> Optional["BBox"]:
        """Overlap of two boxes, or ``None`` if they are disjoint."""
        c_lo = max(self.c_lo, other.c_lo)
        c_hi = min(self.c_hi, other.c_hi)
        x_lo = max(self.x_lo, other.x_lo)
        x_hi = min(self.x_hi, other.x_hi)
        if c_lo > c_hi or x_lo > x_hi:
            return None
        return BBox(c_lo, x_lo, c_hi, x_hi)

    def slices(self) -> Tuple[slice, slice]:
        """``(row_slice, col_slice)`` selecting the box from a 2-D array."""
        return (slice(self.c_lo, self.c_hi + 1), slice(self.x_lo, self.x_hi + 1))

    def extract(self, array: np.ndarray) -> np.ndarray:
        """Copy the box's cells out of *array* (always a fresh array).

        This must be a true copy, never a view: extracted blocks become
        update-packet payloads that live past the extraction while the
        source array keeps mutating.  (``ascontiguousarray`` returns a *view*
        whenever the sliced box is already contiguous — single-row and
        full-width boxes — which silently aliased packet payloads to the
        sender's live array.)
        """
        rows, cols = self.slices()
        return np.array(array[rows, cols], copy=True)

    def cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate all ``(c, x)`` cells in row-major order."""
        for c in range(self.c_lo, self.c_hi + 1):
            for x in range(self.x_lo, self.x_hi + 1):
                yield (c, x)

    @staticmethod
    def from_points(points: np.ndarray) -> "BBox":
        """Bounding box of an ``(n, 2)`` array of ``(c, x)`` cells."""
        if points.size == 0:
            raise GridError("cannot take bbox of zero points")
        c = points[:, 0]
        x = points[:, 1]
        return BBox(int(c.min()), int(x.min()), int(c.max()), int(x.max()))

    @staticmethod
    def of_nonzero(array: np.ndarray) -> Optional["BBox"]:
        """Bounding box of the nonzero entries of *array*, or ``None``.

        This is the "scan the delta array for changes" step of the paper's
        chosen packet structure (§4.3.1).
        """
        rows = np.flatnonzero(array.any(axis=1))
        if rows.size == 0:
            return None
        cols = np.flatnonzero(array.any(axis=0))
        return BBox(int(rows[0]), int(cols[0]), int(rows[-1]), int(cols[-1]))

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """Return ``(c_lo, x_lo, c_hi, x_hi)``."""
        return (self.c_lo, self.x_lo, self.c_hi, self.x_hi)
