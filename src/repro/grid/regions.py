"""Division of the cost array into per-processor owned regions (Figure 2).

Paper §4.1: "The cost array is divided into sections, and each processor is
the owner of one section.  However, each processor has a view of the whole
cost array."

Processors sit on a ``p_rows x p_cols`` grid (the same grid as the CBS mesh
topology): the channel axis is cut into ``p_rows`` bands and the routing
grid axis into ``p_cols`` bands, giving each processor one rectangular
owned region.  :class:`RegionMap` provides:

- the region of each processor and the owner of each cell (vectorised);
- mesh-coordinate geometry (N/S/E/W neighbours, Manhattan distance), used
  both by the SendLocData neighbour optimisation and the locality measure;
- the standard processor-count to grid-shape mapping used in the paper's
  scaling study (2 -> 1x2, 4 -> 2x2, 9 -> 3x3, 16 -> 4x4).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import GridError
from .bbox import BBox

__all__ = ["RegionMap", "proc_grid_shape"]


def proc_grid_shape(n_procs: int) -> Tuple[int, int]:
    """Map a processor count to a near-square ``(rows, cols)`` mesh shape.

    Perfect squares become square meshes (4 -> 2x2, 9 -> 3x3, 16 -> 4x4);
    otherwise the most square factorisation with ``rows <= cols`` is used
    (2 -> 1x2, 8 -> 2x4).  Raises for non-positive counts.
    """
    if n_procs < 1:
        raise GridError(f"need at least one processor, got {n_procs}")
    best = (1, n_procs)
    for rows in range(1, int(np.sqrt(n_procs)) + 1):
        if n_procs % rows == 0:
            best = (rows, n_procs // rows)
    return best


def _band_edges(extent: int, n_bands: int) -> np.ndarray:
    """Split ``extent`` cells into ``n_bands`` near-equal contiguous bands.

    Returns ``n_bands + 1`` edges; band *i* covers ``edges[i]..edges[i+1]-1``.
    Large remainders go to the leading bands (NumPy ``array_split`` order).
    """
    base = extent // n_bands
    rem = extent % n_bands
    sizes = np.full(n_bands, base, dtype=np.int64)
    sizes[:rem] += 1
    edges = np.zeros(n_bands + 1, dtype=np.int64)
    np.cumsum(sizes, out=edges[1:])
    return edges


class RegionMap:
    """Owned-region geometry for a processor mesh over the cost array.

    Parameters
    ----------
    n_channels, n_grids:
        Cost array shape.
    n_procs:
        Number of processors; the mesh shape comes from
        :func:`proc_grid_shape` unless ``shape`` is given explicitly.
    shape:
        Optional explicit ``(p_rows, p_cols)``.
    """

    def __init__(
        self,
        n_channels: int,
        n_grids: int,
        n_procs: int,
        shape: Tuple[int, int] = None,
    ) -> None:
        if shape is None:
            shape = proc_grid_shape(n_procs)
        p_rows, p_cols = shape
        if p_rows * p_cols != n_procs:
            raise GridError(f"mesh shape {shape} does not hold {n_procs} processors")
        if p_rows > n_channels or p_cols > n_grids:
            raise GridError(
                f"mesh {p_rows}x{p_cols} too fine for a {n_channels}x{n_grids} array"
            )
        self.n_channels = n_channels
        self.n_grids = n_grids
        self.n_procs = n_procs
        self.p_rows = p_rows
        self.p_cols = p_cols
        self._row_edges = _band_edges(n_channels, p_rows)
        self._col_edges = _band_edges(n_grids, p_cols)
        # Per-cell owner lookup tables (tiny: one entry per channel/grid).
        self._channel_band = (
            np.searchsorted(self._row_edges, np.arange(n_channels), side="right") - 1
        )
        self._grid_band = (
            np.searchsorted(self._col_edges, np.arange(n_grids), side="right") - 1
        )
        # Regions are immutable once the edges are fixed; build each BBox
        # once instead of on every region() call (the MP update push asks
        # for every region between every pair of wires).
        self._regions: List[BBox] = [
            BBox(
                int(self._row_edges[p // p_cols]),
                int(self._col_edges[p % p_cols]),
                int(self._row_edges[p // p_cols + 1] - 1),
                int(self._col_edges[p % p_cols + 1] - 1),
            )
            for p in range(n_procs)
        ]
        # regions_touched memo: wires keep the same bbox across rip-up /
        # reroute iterations, so the MP nodes ask for the same few boxes
        # over and over.  Bounded by the number of distinct wire bboxes.
        self._touched_cache: dict = {}

    # ------------------------------------------------------------------
    # processor <-> mesh coordinates
    # ------------------------------------------------------------------
    def proc_coords(self, proc: int) -> Tuple[int, int]:
        """Mesh coordinates ``(row, col)`` of processor *proc*."""
        self._check_proc(proc)
        return divmod(proc, self.p_cols)

    def proc_at(self, row: int, col: int) -> int:
        """Processor id at mesh coordinates ``(row, col)``."""
        if not (0 <= row < self.p_rows and 0 <= col < self.p_cols):
            raise GridError(f"mesh coordinates ({row}, {col}) out of range")
        return row * self.p_cols + col

    def neighbors(self, proc: int) -> List[int]:
        """The N/S/E/W mesh neighbours of *proc* (2-4 processors).

        SendLocData packets "are sent only to the North, South, East, and
        West neighbors of the owner processor" (paper §4.3.2).
        """
        row, col = self.proc_coords(proc)
        out: List[int] = []
        if row > 0:
            out.append(self.proc_at(row - 1, col))
        if row < self.p_rows - 1:
            out.append(self.proc_at(row + 1, col))
        if col > 0:
            out.append(self.proc_at(row, col - 1))
        if col < self.p_cols - 1:
            out.append(self.proc_at(row, col + 1))
        return out

    def mesh_distance(self, a: int, b: int) -> int:
        """Manhattan distance between two processors on the mesh."""
        ra, ca = self.proc_coords(a)
        rb, cb = self.proc_coords(b)
        return abs(ra - rb) + abs(ca - cb)

    # ------------------------------------------------------------------
    # regions and owners
    # ------------------------------------------------------------------
    def region(self, proc: int) -> BBox:
        """The owned region of processor *proc* (precomputed, immutable)."""
        self._check_proc(proc)
        return self._regions[proc]

    def all_regions(self) -> List[BBox]:
        """Owned regions indexed by processor id."""
        return list(self._regions)

    def owner_of(self, channel: int, x: int) -> int:
        """Owner processor of cell ``(channel, x)``."""
        if not (0 <= channel < self.n_channels and 0 <= x < self.n_grids):
            raise GridError(f"cell ({channel}, {x}) outside the grid")
        return self.proc_at(
            int(self._channel_band[channel]), int(self._grid_band[x])
        )

    def owners_of_cells(self, cells_c: np.ndarray, cells_x: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner_of` over coordinate arrays."""
        return (
            self._channel_band[cells_c] * self.p_cols + self._grid_band[cells_x]
        ).astype(np.int64, copy=False)

    def regions_touched(self, box: BBox) -> List[int]:
        """All processors whose owned region intersects *box*.

        ReqRmtData uses this: "for each wire, a processor determines which
        regions contain the wire" (§4.3.3) — the wire's bounding box is
        intersected with the region grid.
        """
        cached = self._touched_cache.get(box)
        if cached is not None:
            return cached
        if box.c_hi >= self.n_channels or box.x_hi >= self.n_grids:
            raise GridError(f"bbox {box} exceeds grid")
        band_lo = int(self._channel_band[box.c_lo])
        band_hi = int(self._channel_band[box.c_hi])
        col_lo = int(self._grid_band[box.x_lo])
        col_hi = int(self._grid_band[box.x_hi])
        touched = [
            self.proc_at(r, c)
            for r in range(band_lo, band_hi + 1)
            for c in range(col_lo, col_hi + 1)
        ]
        self._touched_cache[box] = touched
        return touched

    def _check_proc(self, proc: int) -> None:
        if not (0 <= proc < self.n_procs):
            raise GridError(f"processor {proc} out of range [0, {self.n_procs})")

    def __repr__(self) -> str:
        return (
            f"RegionMap({self.n_channels}x{self.n_grids} over "
            f"{self.p_rows}x{self.p_cols} processors)"
        )
