"""The delta array: change tracking between explicit updates.

Paper §4.1: "we add a new data structure, known as the delta array.  The
delta array has the same dimensions as the cost array, and keeps track of
changes made to the cost array between updates.  This delta array is used
to notify other processors of changes that have been made."

The delta array is what makes the paper's headline traffic reduction
possible: when a wire is ripped up (−1 on its old cells) and rerouted over
a mostly identical path (+1 on the new cells), the overlapping cells cancel
to zero in the delta array and are *never transmitted* — whereas the shared
memory version pays coherence traffic for every individual write (§5.2).

:class:`DeltaArray` records signed changes and supports the per-region
"scan for nonzero, take the bounding box" packet construction of §4.3.1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..errors import GridError
from .bbox import BBox

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .regions import RegionMap

__all__ = ["DeltaArray"]


class DeltaArray:
    """Signed change counts with the same shape as the cost array."""

    __slots__ = ("n_channels", "n_grids", "_data", "_touched")

    def __init__(self, n_channels: int, n_grids: int) -> None:
        if n_channels < 1 or n_grids < 1:
            raise GridError(f"bad delta array shape ({n_channels}, {n_grids})")
        self.n_channels = n_channels
        self.n_grids = n_grids
        self._data = np.zeros((n_channels, n_grids), dtype=np.int32)
        # Flat indices of cells written since the last owner scan.  Every
        # nonzero cell is in here (writes append; clears only zero cells,
        # and zeroed entries are filtered out at scan time), which lets
        # :meth:`dirty_bboxes_by_owner` avoid a full-grid nonzero sweep.
        self._touched: List[np.ndarray] = []

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_channels, n_grids)``."""
        return (self.n_channels, self.n_grids)

    @property
    def data(self) -> np.ndarray:
        """The live backing array."""
        return self._data

    def record_path(self, flat_cells: np.ndarray, delta: int) -> None:
        """Record a path application (+1) or rip-up (−1) on *flat_cells*.

        Cancellation happens automatically: a rip-up followed by a re-route
        over the same cell sums to zero and the cell drops out of future
        update packets.
        """
        if flat_cells.size == 0:
            return
        self._data.reshape(-1)[flat_cells] += delta
        self._touched.append(flat_cells)

    def region_dirty_bbox(self, region: BBox) -> Optional[BBox]:
        """Bounding box of nonzero deltas *inside* ``region``.

        Returns ``None`` when the region is clean — the paper's protocols
        suppress updates for clean regions ("if no changes have been made
        in the region to be updated, the update will not be sent out",
        §4.3.2).  Coordinates of the returned box are absolute (grid
        frame), not region-relative.
        """
        rows, cols = region.slices()
        sub = self._data[rows, cols]
        local = BBox.of_nonzero(sub)
        if local is None:
            return None
        return BBox(
            local.c_lo + region.c_lo,
            local.x_lo + region.x_lo,
            local.c_hi + region.c_lo,
            local.x_hi + region.x_lo,
        )

    def dirty_bboxes_by_owner(self, regions: "RegionMap") -> Dict[int, BBox]:
        """Dirty bounding box of every processor's region, in one scan.

        Equivalent to calling :meth:`region_dirty_bbox` for each region of
        *regions* (owned regions partition the grid, so grouping dirty
        cells by owner yields exactly the per-region dirty boxes), but the
        incremental write log replaces ``n_procs`` region slices — the
        dominant cost of the sender-initiated update push when most
        regions are clean.  Clean regions are simply absent from the
        returned dict.
        """
        touched = self._touched
        if not touched:
            return {}
        cand = touched[0] if len(touched) == 1 else np.concatenate(touched)
        cand = np.sort(cand)
        if cand.size > 1:
            # Consecutive-duplicate mask: cheaper than np.unique and the
            # input is a concatenation of already-sorted runs.
            keep = np.empty(cand.size, dtype=bool)
            keep[0] = True
            np.not_equal(cand[1:], cand[:-1], out=keep[1:])
            cand = cand[keep]
        live = cand[self._data.reshape(-1)[cand] != 0]
        # The live set replaces the write log: it is exactly the nonzero
        # cells, so the tracking invariant holds for the next scan.
        self._touched = [live] if live.size else []
        if live.size == 0:
            return {}
        # np.unique sorts ascending flat indices == row-major scan order,
        # matching what np.nonzero over the full grid would yield.
        cc, xx = np.divmod(live, self.n_grids)
        owners = regions.owners_of_cells(cc, xx)
        first = int(owners[0])
        if owners[-1] == first and np.all(owners == first):
            # Single dirty region — the common case for a locally routed
            # wire; nonzero order is row-major, so channels are sorted.
            return {
                first: BBox(int(cc[0]), int(xx.min()), int(cc[-1]), int(xx.max()))
            }
        order = np.argsort(owners, kind="stable")
        owners_s = owners[order]
        cc_s = cc[order]
        xx_s = xx[order]
        uniq, starts = np.unique(owners_s, return_index=True)
        # np.nonzero walks row-major, so within each owner group the
        # channel coordinates stay sorted; only x needs a group min/max.
        x_lo = np.minimum.reduceat(xx_s, starts)
        x_hi = np.maximum.reduceat(xx_s, starts)
        ends = np.append(starts[1:], owners_s.size) - 1
        return {
            int(owner): BBox(
                int(cc_s[s]), int(x_lo[k]), int(cc_s[e]), int(x_hi[k])
            )
            for k, (owner, s, e) in enumerate(zip(uniq, starts, ends))
        }

    def accumulate(self, box: BBox, deltas: np.ndarray) -> None:
        """Fold received relative *deltas* into a bbox of this array.

        Used by owners when they incorporate a remote's SendRmtData /
        RspLocData: the incorporated changes become part of the owner's
        own pending changes, so the next SendLocData push covers them —
        without this, contributions learned from remote processors would
        never reach the owner's neighbours.
        """
        if box.c_hi >= self.n_channels or box.x_hi >= self.n_grids:
            raise GridError(f"bbox {box} exceeds delta array shape {self.shape}")
        if deltas.shape != (box.height, box.width):
            raise GridError(
                f"delta shape {deltas.shape} != bbox {box.height}x{box.width}"
            )
        rows, cols = box.slices()
        self._data[rows, cols] += deltas
        dc, dx = np.nonzero(deltas)
        if dc.size:
            self._touched.append((dc + box.c_lo) * self.n_grids + (dx + box.x_lo))

    def extract(self, box: BBox) -> np.ndarray:
        """Copy the delta values of a bbox (payload of SendRmtData)."""
        if box.c_hi >= self.n_channels or box.x_hi >= self.n_grids:
            raise GridError(f"bbox {box} exceeds delta array shape {self.shape}")
        return box.extract(self._data)

    def clear_region(self, region: BBox) -> None:
        """Zero all deltas in ``region`` (after they have been sent)."""
        rows, cols = region.slices()
        self._data[rows, cols] = 0

    def clear_all(self) -> None:
        """Zero the whole delta array."""
        self._data[:] = 0

    def is_clean(self) -> bool:
        """True if no unsent changes remain anywhere."""
        return not self._data.any()

    def nonzero_count(self) -> int:
        """Number of cells with pending changes."""
        return int(np.count_nonzero(self._data))

    def __repr__(self) -> str:
        return (
            f"DeltaArray({self.n_channels}x{self.n_grids}, "
            f"dirty_cells={self.nonzero_count()})"
        )
