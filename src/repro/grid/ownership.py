"""Consistent-hash region re-ownership for crash recovery.

The Figure-2 region division assigns region *i* to processor *i* for the
whole run.  Under a fail-stop crash plan that mapping must change at run
time: a confirmed-dead processor's regions need a new owner that every
survivor agrees on *without* coordination.  :class:`OwnershipMap` layers a
consistent-hash ring (:class:`HashRing`) over :class:`RegionMap`:

- while a region's original owner lives, ownership is unchanged (the
  simulation is bit-identical to a crash-free run until the first death);
- when a processor is confirmed dead, each of its regions is re-assigned
  to the ring successor of ``hash(region)`` among the survivors.

Both properties every survivor needs hold by construction:

- **determinism** — hashes come from a seeded splitmix64-style integer
  mix (never Python's per-process-salted ``hash()``), so every node
  computes the same assignment;
- **order independence** — removing a ring member never changes the
  owner of a key it did not own, so nodes that learn of multiple deaths
  in different orders still converge on the same ownership vector.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from ..errors import GridError
from .regions import RegionMap

__all__ = ["HashRing", "OwnershipMap", "mix64"]

_MASK64 = (1 << 64) - 1


def mix64(x: int) -> int:
    """Deterministic 64-bit integer mix (splitmix64 finaliser).

    Python's builtin ``hash()`` is salted per process, which would make
    ring positions differ between runs; this mix is a pure function of
    its argument everywhere.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class HashRing:
    """A consistent-hash ring over integer member ids.

    Each member gets ``replicas`` points on the ring (hashes of
    ``(seed, member, replica)``); a key is owned by the member whose
    point is the clockwise successor of ``hash(key)``.  Removing a
    member deletes only that member's points, so every key it did not
    own keeps its owner — the property that makes re-ownership converge
    regardless of the order deaths are processed in.
    """

    def __init__(self, members, seed: int = 0, replicas: int = 8) -> None:
        if replicas < 1:
            raise GridError(f"need at least one replica point, got {replicas}")
        self.seed = seed
        self.replicas = replicas
        self._points: List[Tuple[int, int]] = []
        for member in sorted(set(int(m) for m in members)):
            for rep in range(replicas):
                point = mix64(mix64(mix64(seed) ^ member) ^ (rep + 1))
                self._points.append((point, member))
        self._points.sort()
        if not self._points:
            raise GridError("hash ring needs at least one member")

    def members(self) -> List[int]:
        """Current members, sorted."""
        return sorted(set(m for _, m in self._points))

    def remove(self, member: int) -> None:
        """Remove *member*'s points; raises if it would empty the ring."""
        member = int(member)
        remaining = [p for p in self._points if p[1] != member]
        if not remaining:
            raise GridError("cannot remove the last hash ring member")
        self._points = remaining

    def owner(self, key: int) -> int:
        """The member owning *key* (clockwise successor on the ring)."""
        point = mix64(mix64(self.seed ^ 0x5EED) ^ int(key))
        idx = bisect.bisect_right(self._points, (point, _MASK64))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]


class OwnershipMap:
    """Live region ownership layered over a static :class:`RegionMap`.

    Initially region *i* belongs to processor *i* (the Figure-2 mapping);
    :meth:`mark_dead` retires a processor and deterministically
    re-assigns each of its regions to a survivor via the hash ring.
    Every node holds its own replica of this map; because all operations
    are pure functions of ``(regions, seed, set-of-dead)``, replicas
    that have processed the same deaths are identical.
    """

    def __init__(self, regions: RegionMap, seed: int = 0) -> None:
        self.regions = regions
        self.seed = seed
        self.n_procs = regions.n_procs
        self._owner: List[int] = list(range(self.n_procs))
        self._dead: set = set()
        self._ring = HashRing(range(self.n_procs), seed=seed)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def is_live(self, proc: int) -> bool:
        """True while *proc* has not been marked dead."""
        return proc not in self._dead

    def live_members(self) -> List[int]:
        """Sorted live processor ids."""
        return [p for p in range(self.n_procs) if p not in self._dead]

    @property
    def dead(self) -> frozenset:
        """Processors marked dead so far."""
        return frozenset(self._dead)

    def mark_dead(self, proc: int) -> Dict[int, int]:
        """Retire *proc*; returns ``{region_idx: new_owner}`` for its regions.

        Idempotent: marking an already-dead processor returns ``{}``.
        Raises :class:`GridError` if the death would leave no survivor.
        """
        self.regions._check_proc(proc)
        if proc in self._dead:
            return {}
        if len(self._dead) + 1 >= self.n_procs:
            raise GridError("cannot mark the last live processor dead")
        self._dead.add(proc)
        self._ring.remove(proc)
        reassigned: Dict[int, int] = {}
        for region_idx in range(self.n_procs):
            if self._owner[region_idx] == proc:
                new_owner = self._ring.owner(region_idx)
                self._owner[region_idx] = new_owner
                reassigned[region_idx] = new_owner
        return reassigned

    # ------------------------------------------------------------------
    # ownership lookups
    # ------------------------------------------------------------------
    def live_owner(self, region_idx: int) -> int:
        """The live processor currently owning region *region_idx*."""
        self.regions._check_proc(region_idx)
        return self._owner[region_idx]

    def regions_owned_by(self, proc: int) -> List[int]:
        """Region indices currently owned by *proc* (sorted)."""
        return [r for r in range(self.n_procs) if self._owner[r] == proc]

    def owner_vector(self) -> Tuple[int, ...]:
        """The full region -> owner mapping (for agreement checks)."""
        return tuple(self._owner)

    def wire_owner(self, wire_idx: int) -> int:
        """Deterministic live adopter for orphaned wire *wire_idx*.

        Uses a different key salt than region ownership so wire adoption
        spreads over survivors independently of region adoption.
        """
        return self._ring.owner(mix64(int(wire_idx) ^ 0x77157715) & _MASK64)

    def __repr__(self) -> str:
        return (
            f"OwnershipMap({self.n_procs} procs, dead={sorted(self._dead)}, "
            f"owners={self._owner})"
        )
