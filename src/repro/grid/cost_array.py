"""The LocusRoute cost array.

"LocusRoute's central data structure is a cost array that keeps a record of
the number of wires running through each routing grid of the circuit"
(paper §3).  The array has shape ``(n_channels, n_grids)``; entry ``(c, x)``
counts the wires currently occupying channel ``c`` at grid column ``x``.

:class:`CostArray` wraps a NumPy ``int32`` array with the operations the
router and the update protocols need:

- apply / remove a routed path (vectorised scatter-add on flat indices);
- candidate evaluation helpers (row prefix sums, column range sums) used by
  the two-bend router;
- region extraction / replacement for update packets;
- quality metrics hooks (per-channel maxima for circuit height).

The array deliberately allows *negative transients only as an error*: since
every decrement must correspond to an earlier increment of the same path,
a well-behaved client can never drive an entry below zero.  ``remove_path``
checks this in debug mode (`strict=True`, the default) because it is the
single most effective canary for rip-up bookkeeping bugs.  Rip-up must
mirror application exactly: a path applied with ``apply_path(cells, delta)``
is ripped up with ``remove_path(cells, delta)`` using the *same* delta, and
the strict canary checks each entry against that delta (an entry below the
delta being removed proves the path was never applied at that weight).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import GridError
from .bbox import BBox

__all__ = ["CostArray"]

#: Marker stored in ``_row_valid`` by :meth:`CostArray.wrap`: the backing
#: buffer is shared with other processes, so the prefix cache (whose
#: invalidation only sees local writes) must stay off.
_WRAPPED = object()


class CostArray:
    """Wire-occupancy counts over the routing grid.

    Parameters
    ----------
    n_channels, n_grids:
        Grid dimensions.
    data:
        Optional initial contents (copied); must match the dimensions.
    """

    __slots__ = (
        "n_channels",
        "n_grids",
        "_data",
        "_cache_on",
        "_row_prefix_tab",
        "_row_valid",
        "_col_prefix_tab",
        "_col_valid",
    )

    def __init__(
        self,
        n_channels: int,
        n_grids: int,
        data: Optional[np.ndarray] = None,
    ) -> None:
        if n_channels < 1 or n_grids < 1:
            raise GridError(f"bad cost array shape ({n_channels}, {n_grids})")
        self.n_channels = n_channels
        self.n_grids = n_grids
        if data is None:
            self._data = np.zeros((n_channels, n_grids), dtype=np.int32)
        else:
            if data.shape != (n_channels, n_grids):
                raise GridError(
                    f"data shape {data.shape} != ({n_channels}, {n_grids})"
                )
            self._data = np.array(data, dtype=np.int32, copy=True)
        self._cache_on = False
        self._row_prefix_tab: Optional[np.ndarray] = None
        self._row_valid: Optional[np.ndarray] = None
        self._col_prefix_tab: Optional[np.ndarray] = None
        self._col_valid = False

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_channels, n_grids)``."""
        return (self.n_channels, self.n_grids)

    @property
    def data(self) -> np.ndarray:
        """The live backing array (mutations are visible to this object)."""
        return self._data

    def copy(self) -> "CostArray":
        """Deep copy."""
        return CostArray(self.n_channels, self.n_grids, self._data)

    @classmethod
    def wrap(cls, data: np.ndarray) -> "CostArray":
        """Adopt *data* as the live backing array **without copying**.

        This is how the live shared-memory router views the grid that
        lives in a ``multiprocessing.shared_memory`` segment: every
        process wraps the same buffer, so writes by one worker are
        immediately visible (and deliberately unsynchronised — stale —
        for readers, paper §3).

        The buffer must be a C-contiguous ``int32`` array of shape
        ``(n_channels, n_grids)``.  Because other processes mutate the
        buffer behind this object's back, a wrapped array must never
        :meth:`enable_prefix_cache` — invalidation hooks only see local
        writes.  :meth:`enable_prefix_cache` raises on a wrapped array.
        """
        if not isinstance(data, np.ndarray) or data.ndim != 2:
            raise GridError("wrap needs a 2-D numpy array")
        if data.dtype != np.int32:
            raise GridError(f"wrap needs int32 data, got {data.dtype}")
        if not data.flags["C_CONTIGUOUS"]:
            raise GridError("wrap needs a C-contiguous buffer")
        n_channels, n_grids = (int(s) for s in data.shape)
        if n_channels < 1 or n_grids < 1:
            raise GridError(f"bad cost array shape ({n_channels}, {n_grids})")
        self = object.__new__(cls)
        self.n_channels = n_channels
        self.n_grids = n_grids
        self._data = data
        self._cache_on = False
        self._row_prefix_tab = None
        # ``_row_valid is None`` marks a cache-capable array; a wrapped
        # array reuses the slot as a shared-buffer marker (ndarray, never
        # None) so enable_prefix_cache can refuse it.
        self._row_valid = _WRAPPED
        self._col_prefix_tab = None
        self._col_valid = False
        return self

    def __getitem__(self, key):  # noqa: ANN001 - numpy fancy indexing passthrough
        return self._data[key]

    def total_occupancy(self) -> int:
        """Sum of all entries (total wire-cells routed)."""
        return int(self._data.sum())

    def flatten_index(self, cells_c: np.ndarray, cells_x: np.ndarray) -> np.ndarray:
        """Map ``(c, x)`` coordinate vectors to flat indices."""
        return cells_c.astype(np.int64) * self.n_grids + cells_x.astype(np.int64)

    # ------------------------------------------------------------------
    # path application
    # ------------------------------------------------------------------
    def apply_path(self, flat_cells: np.ndarray, delta: int = 1) -> None:
        """Add *delta* to every cell in *flat_cells* (flat indices).

        ``flat_cells`` must contain each cell at most once — paths are cell
        *sets* (see :mod:`repro.route.path`), so a wire contributes one
        wire-count per cell it occupies regardless of how many of its
        segments cross that cell.
        """
        if flat_cells.size == 0:
            return
        flat = self._data.reshape(-1)
        flat[flat_cells] += delta
        if self._cache_on:
            self._invalidate_cells(flat_cells)

    def remove_path(
        self, flat_cells: np.ndarray, delta: int = 1, strict: bool = True
    ) -> None:
        """Rip up a previously applied path (subtract *delta* from its cells).

        *delta* must match the delta the path was applied with, so a
        multi-delta :meth:`apply_path` can be ripped up exactly.  With
        ``strict`` (default) raises :class:`GridError` if any cell would go
        negative — i.e. any entry is below *delta* — which always indicates
        double rip-up, a path that was never applied, or a delta mismatch.
        """
        if flat_cells.size == 0:
            return
        flat = self._data.reshape(-1)
        if strict and np.any(flat[flat_cells] < delta):
            raise GridError("rip-up would drive a cost array entry negative")
        flat[flat_cells] -= delta
        if self._cache_on:
            self._invalidate_cells(flat_cells)

    def path_cost(self, flat_cells: np.ndarray) -> int:
        """Sum of entries over a set of cells (the path's routing cost)."""
        if flat_cells.size == 0:
            return 0
        return int(self._data.reshape(-1)[flat_cells].sum())

    # ------------------------------------------------------------------
    # candidate evaluation helpers (vectorised two-bend router)
    # ------------------------------------------------------------------
    def enable_prefix_cache(self) -> None:
        """Keep prefix-sum tables alive across calls, with write invalidation.

        Once enabled, :meth:`row_prefix` and :meth:`col_prefix_table`
        results are cached and reused until a mutation through
        :meth:`apply_path` / :meth:`remove_path` / :meth:`accumulate` /
        :meth:`replace` dirties the rows they cover — which is how the
        vectorised router shares one set of tables across all segments of
        a wire *and* across consecutive wires between commits.

        Mutating ``self.data`` directly bypasses the invalidation hooks
        and leaves the cache stale; callers that write through ``data``
        must not enable the cache.  Idempotent.
        """
        if self._cache_on:
            return
        if self._row_valid is _WRAPPED:
            raise GridError(
                "cannot enable the prefix cache on a wrapped shared buffer: "
                "remote writes bypass the invalidation hooks"
            )
        self._cache_on = True
        self._row_prefix_tab = np.zeros(
            (self.n_channels, self.n_grids + 1), dtype=np.int64
        )
        self._row_valid = np.zeros(self.n_channels, dtype=bool)
        self._col_prefix_tab = np.zeros(
            (self.n_channels + 1, self.n_grids), dtype=np.int64
        )
        self._col_valid = False

    def _invalidate_cells(self, flat_cells: np.ndarray) -> None:
        """Dirty the cache rows covering *flat_cells* (conservative range).

        Flat index // n_grids is monotonic, so the channel range follows
        from the extreme flat indices without materialising a quotient
        array.
        """
        c_lo = int(flat_cells.min()) // self.n_grids
        c_hi = int(flat_cells.max()) // self.n_grids
        self._row_valid[c_lo : c_hi + 1] = False
        self._col_valid = False

    def _invalidate_rows(self, c_lo: int, c_hi: int) -> None:
        """Dirty the cache rows ``c_lo..c_hi`` inclusive."""
        self._row_valid[c_lo : c_hi + 1] = False
        self._col_valid = False

    def row_prefix(self, channel: int) -> np.ndarray:
        """Exclusive prefix sums of one channel row.

        ``row_prefix(c)[x]`` is the sum of entries ``(c, 0..x-1)``; the
        returned array has length ``n_grids + 1``, so the inclusive range
        sum over columns ``[a..b]`` is ``p[b+1] - p[a]``.

        With :meth:`enable_prefix_cache` the returned array is a live row
        of the cache table — treat it as read-only.
        """
        if self._cache_on:
            row = self._row_prefix_tab[channel]
            if not self._row_valid[channel]:
                np.cumsum(self._data[channel], out=row[1:])
                self._row_valid[channel] = True
            return row
        p = np.zeros(self.n_grids + 1, dtype=np.int64)
        np.cumsum(self._data[channel], out=p[1:])
        return p

    def col_prefix_table(self) -> np.ndarray:
        """Exclusive down-the-channels prefix sums, shape ``(C + 1, G)``.

        ``col_prefix_table()[c, x]`` is the sum of entries
        ``(0..c-1, x)``, so the inclusive channel-range sum at column
        ``x`` is ``t[b+1, x] - t[a, x]`` — the vertical-run price of a
        candidate bend column in one gather.  Cached (treat as read-only)
        when the prefix cache is enabled.
        """
        if self._cache_on:
            if not self._col_valid:
                np.cumsum(
                    self._data, axis=0, dtype=np.int64,
                    out=self._col_prefix_tab[1:],
                )
                self._col_valid = True
            return self._col_prefix_tab
        t = np.zeros((self.n_channels + 1, self.n_grids), dtype=np.int64)
        np.cumsum(self._data, axis=0, dtype=np.int64, out=t[1:])
        return t

    def column_range_sums(
        self, c_lo: int, c_hi: int, x_lo: int, x_hi: int
    ) -> np.ndarray:
        """Per-column sums of rows ``c_lo..c_hi`` over columns ``x_lo..x_hi``.

        Used to price the vertical run of every candidate two-bend route at
        once.  Rows are *inclusive*; an empty row range yields zeros.
        """
        if c_lo > c_hi:
            return np.zeros(x_hi - x_lo + 1, dtype=np.int64)
        block = self._data[c_lo : c_hi + 1, x_lo : x_hi + 1]
        return block.sum(axis=0, dtype=np.int64)

    def block_prefix_tables(
        self, c_lo: int, c_hi: int, x_lo: int, x_hi: int, need_col: bool = True
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Exclusive prefix-sum tables over an inclusive bbox of entries.

        Returns ``(rowp, colp)`` for the block of rows ``c_lo..c_hi`` and
        columns ``x_lo..x_hi``:

        - ``rowp`` has shape ``(rows, width + 1)``; ``rowp[r, k]`` is the
          sum of the first ``k`` entries of block row ``r``, so a row's
          inclusive column-range sum is ``rowp[r, b+1] - rowp[r, a]``;
        - ``colp`` has shape ``(rows + 1, width)``; ``colp[k, x]`` is the
          sum of the first ``k`` entries of block column ``x``, so a
          column's inclusive row-range sum is ``colp[b+1, x] - colp[a, x]``.

        One pair of tables prices every two-bend candidate of every segment
        of a wire whose pins lie inside the bbox — the per-route shared
        table the vectorised router builds once per :func:`route_wire`.
        ``need_col=False`` skips the column table (returned as ``None``)
        for callers whose segments never cross an interior channel.
        """
        self._check_box(BBox(c_lo, x_lo, c_hi, x_hi))
        block = self._data[c_lo : c_hi + 1, x_lo : x_hi + 1]
        rows, width = block.shape
        rowp = np.zeros((rows, width + 1), dtype=np.int64)
        np.cumsum(block, axis=1, dtype=np.int64, out=rowp[:, 1:])
        if not need_col:
            return rowp, None
        colp = np.zeros((rows + 1, width), dtype=np.int64)
        np.cumsum(block, axis=0, dtype=np.int64, out=colp[1:, :])
        return rowp, colp

    # ------------------------------------------------------------------
    # regions / update support
    # ------------------------------------------------------------------
    def extract(self, box: BBox) -> np.ndarray:
        """Copy a bbox of entries out (for SendLocData / response packets)."""
        self._check_box(box)
        return box.extract(self._data)

    def replace(self, box: BBox, values: np.ndarray) -> None:
        """Overwrite a bbox with absolute *values* (receiving SendLocData)."""
        self._check_box(box)
        if values.shape != (box.height, box.width):
            raise GridError(
                f"replacement shape {values.shape} != bbox {box.height}x{box.width}"
            )
        rows, cols = box.slices()
        self._data[rows, cols] = values
        if self._cache_on:
            self._invalidate_rows(box.c_lo, box.c_hi)

    def accumulate(self, box: BBox, deltas: np.ndarray) -> None:
        """Add relative *deltas* into a bbox (receiving SendRmtData)."""
        self._check_box(box)
        if deltas.shape != (box.height, box.width):
            raise GridError(
                f"delta shape {deltas.shape} != bbox {box.height}x{box.width}"
            )
        rows, cols = box.slices()
        self._data[rows, cols] += deltas
        if self._cache_on:
            self._invalidate_rows(box.c_lo, box.c_hi)

    def channel_maxima(self) -> np.ndarray:
        """Per-channel maximum occupancy — the routing tracks each channel
        needs; their sum is the *circuit height* quality metric."""
        return self._data.max(axis=1)

    def _check_box(self, box: BBox) -> None:
        if box.c_hi >= self.n_channels or box.x_hi >= self.n_grids:
            raise GridError(f"bbox {box} exceeds array shape {self.shape}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CostArray):
            return NotImplemented
        return self.shape == other.shape and bool(
            np.array_equal(self._data, other._data)
        )

    def __repr__(self) -> str:
        return (
            f"CostArray({self.n_channels}x{self.n_grids}, "
            f"total={self.total_occupancy()})"
        )
