"""The shared-memory distributed loop (dynamic self-scheduling).

Paper §3: "wire distribution can be easily accomplished using a
distributed loop, in which processes are repeatedly given wires to route.
When done with one wire, processes request another wire subscript.  When
all the wires have been given out, processes are blocked at a barrier."

:class:`DistributedLoop` is that shared counter.  The Tango-style shared
memory simulator calls :meth:`next_wire` whenever a virtual processor goes
idle; because the simulator serialises those calls in virtual-time order,
the dynamic schedule is deterministic for a given circuit and timing
model.  :meth:`reset` rearms the loop for the next routing iteration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import AssignmentError

__all__ = ["DistributedLoop"]


class DistributedLoop:
    """A self-scheduling wire counter over a fixed wire order."""

    def __init__(self, wire_order: Sequence[int]) -> None:
        if len(set(wire_order)) != len(wire_order):
            raise AssignmentError("wire_order contains duplicates")
        self._order = list(wire_order)
        self._next = 0
        #: wires returned to the loop (a crashed processor's in-flight
        #: work); handed out again before the regular order advances.
        #: Kept separate from ``_order`` so :meth:`reset` rearms the
        #: original iteration order exactly.
        self._requeued: list = []
        self.grabs = 0  #: total next_wire calls that returned a wire
        self.requeues = 0  #: total wires pushed back into the loop

    @property
    def remaining(self) -> int:
        """Wires not yet handed out this iteration."""
        return len(self._order) - self._next + len(self._requeued)

    def next_wire(self) -> Optional[int]:
        """Hand out the next wire index, or ``None`` when exhausted."""
        if self._requeued:
            self.grabs += 1
            return self._requeued.pop(0)
        if self._next >= len(self._order):
            return None
        wire = self._order[self._next]
        self._next += 1
        self.grabs += 1
        return wire

    def push_back(self, wire: int) -> None:
        """Return a handed-out wire to the loop (self-scheduling recovery).

        Used when the processor that grabbed *wire* fail-stopped before
        committing it: the wire re-enters the distributed loop and the
        next idle survivor picks it up.
        """
        self._requeued.append(wire)
        self.requeues += 1

    def reset(self) -> None:
        """Rearm the loop for a new iteration (same wire order)."""
        self._next = 0
        self._requeued.clear()
