"""Centroid-based locality assignment — the paper's suggested improvement.

The paper's conclusions note that "more sophisticated wire assignment
heuristics may further improve quality and reduce traffic".  The simplest
such refinement: assign a wire to the owner of its *bounding-box centre*
instead of its leftmost pin.  A leftmost-pin rule systematically places a
wire at the left edge of its own footprint — every cell of the wire lies
at or to the right of its assigned processor — while the centroid rule
centres the footprint on the owner, roughly halving the expected
cell-to-owner distance for long wires.

:class:`CentroidAssigner` is otherwise identical to
:class:`~repro.assign.threshold.ThresholdCostAssigner` (same cost
measure, same ThresholdCost semantics, same LPT balancing of the long
tail), so the two heuristics compare one variable at a time — which is
what ``benchmarks/bench_a8_centroid.py`` measures.
"""

from __future__ import annotations

from .base import Assignment
from .threshold import ThresholdCostAssigner

__all__ = ["CentroidAssigner"]


class CentroidAssigner(ThresholdCostAssigner):
    """ThresholdCost assignment by bounding-box centre instead of leftmost pin."""

    @property
    def method_name(self) -> str:  # type: ignore[override]
        return f"Centroid/{super().method_name}"

    def assign(self) -> Assignment:
        """Assign local wires by footprint centre; LPT-balance the rest."""
        import heapq

        import numpy as np

        n = self.circuit.n_wires
        owner = np.full(n, -1, dtype=np.int64)
        loads = [0.0] * self.regions.n_procs
        held = []

        for w in range(n):
            wire = self.circuit.wire(w)
            cost = self.wire_cost(w)
            if cost < self.threshold_cost:
                c_lo, x_lo, c_hi, x_hi = wire.bounding_box
                proc = self.regions.owner_of((c_lo + c_hi) // 2, (x_lo + x_hi) // 2)
                owner[w] = proc
                loads[proc] += cost
            else:
                held.append((cost, w))

        held.sort(key=lambda item: (-item[0], item[1]))
        heap = [(loads[p], p) for p in range(self.regions.n_procs)]
        heapq.heapify(heap)
        for cost, w in held:
            load, proc = heapq.heappop(heap)
            owner[w] = proc
            heapq.heappush(heap, (load + cost, proc))

        return Assignment(
            owner=owner, n_procs=self.regions.n_procs, method=self.method_name
        )
