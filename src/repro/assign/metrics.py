"""Load balance metrics over static assignments.

Paper §5.3.3: "wire assignment policies which strictly enforce locality can
lead to poor load balancing, with large execution time degradation."  The
metrics here quantify that: imbalance is the ratio of the heaviest
processor's work to the mean, where a wire's work is its routing cost
measure (the same length-based measure ThresholdCost uses), which tracks
the two-bend evaluation effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..circuits.model import Circuit
from .base import Assignment

__all__ = ["LoadReport", "load_report"]


@dataclass(frozen=True)
class LoadReport:
    """Load distribution of a static assignment.

    ``imbalance`` is ``max_load / mean_load`` (1.0 = perfect); ``makespan
    lower bound`` style reasoning applies: simulated execution time cannot
    beat the heaviest processor's routing work.
    """

    wires_per_proc: np.ndarray
    work_per_proc: np.ndarray
    imbalance: float
    max_wires: int
    min_wires: int

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict summary."""
        return {
            "wires_per_proc": self.wires_per_proc.tolist(),
            "work_per_proc": self.work_per_proc.tolist(),
            "imbalance": self.imbalance,
            "max_wires": self.max_wires,
            "min_wires": self.min_wires,
        }


def load_report(circuit: Circuit, assignment: Assignment) -> LoadReport:
    """Compute :class:`LoadReport` for *assignment* over *circuit*.

    Work is approximated by each wire's squared-ish routing effort proxy:
    the two-bend evaluation inspects O(span^2) candidate cells, so we use
    ``length_cost ** 2 / 100 + length_cost`` which tracks the router's
    actual :attr:`~repro.route.twobend.SegmentRoute.work_cells` closely
    while staying independent of the cost array state.
    """
    costs = np.array(
        [w.length_cost() for w in circuit.wires], dtype=np.float64
    )
    work = costs**2 / 100.0 + costs
    wires_per_proc = assignment.load_counts()
    work_per_proc = np.zeros(assignment.n_procs, dtype=np.float64)
    np.add.at(work_per_proc, assignment.owner, work)
    mean = float(work_per_proc.mean()) if assignment.n_procs else 0.0
    imbalance = float(work_per_proc.max() / mean) if mean > 0 else 1.0
    return LoadReport(
        wires_per_proc=wires_per_proc,
        work_per_proc=work_per_proc,
        imbalance=imbalance,
        max_wires=int(wires_per_proc.max()),
        min_wires=int(wires_per_proc.min()),
    )
