"""ThresholdCost locality-based wire assignment (paper §4.2).

"A cost measure is computed for each wire, based on its length.  Any wire
with cost less than the parameter ThresholdCost is assigned to the owner
processor of the wire's leftmost pin.  All longer wires, which have cost
greater than ThresholdCost and which have limited locality anyway, are
held until a final step in the static wire assignment phase, where they
are assigned to balance the load, ignoring locality."

Cost measure
------------
The wire cost estimates the *routing effort* the wire will demand: the
two-bend evaluation inspects O(span^2) candidate cells, so the measure is
``L + L**2 / WORK_QUADRATIC_SCALE`` with ``L`` the wire's chained
Manhattan length (:meth:`repro.circuits.model.Wire.length_cost`).  On the
benchmark circuits this puts the paper's parameter values in their
original regimes: ThresholdCost = 30 keeps the short local half of the
netlist locality-assigned, 1000 load-balances only the work-dominant long
tail (~15 % of wires), and infinity disables the balancing step entirely
— which is what produces the paper's Table 4 execution-time blow-up.

Load-balancing step
-------------------
Held wires are sorted by descending cost and greedily handed to the
currently least-loaded processor, where load is the summed cost of wires
assigned so far — the classic LPT heuristic.  Ties break to the lowest
processor id for determinism.
"""

from __future__ import annotations

import heapq
import math
from typing import List

import numpy as np

from ..circuits.model import Circuit
from ..errors import AssignmentError
from ..grid.regions import RegionMap
from .base import Assignment, WireAssigner

__all__ = ["ThresholdCostAssigner", "fully_local", "WORK_QUADRATIC_SCALE"]

#: Divisor of the quadratic term in the wire cost measure (see module
#: docstring); calibrated so the paper's ThresholdCost values of 30 and
#: 1000 land at ~45 % and ~85 % of the benchmark netlists respectively.
WORK_QUADRATIC_SCALE = 25.0


class ThresholdCostAssigner(WireAssigner):
    """Locality-first assignment with LPT balancing of long wires.

    Parameters
    ----------
    circuit, regions:
        As for every :class:`~repro.assign.base.WireAssigner`.
    threshold_cost:
        The ThresholdCost parameter, in physical cost units; use
        ``math.inf`` for the fully local extreme.
    """

    def __init__(
        self, circuit: Circuit, regions: RegionMap, threshold_cost: float
    ) -> None:
        super().__init__(circuit, regions)
        if threshold_cost <= 0:
            raise AssignmentError(f"threshold_cost must be positive, got {threshold_cost}")
        self.threshold_cost = threshold_cost

    @property
    def method_name(self) -> str:  # type: ignore[override]
        if math.isinf(self.threshold_cost):
            return "ThresholdCost=inf"
        return f"ThresholdCost={self.threshold_cost:g}"

    def wire_cost(self, wire_index: int) -> float:
        """The length-based cost measure of one wire (see module docstring).

        ``L + L**2 / WORK_QUADRATIC_SCALE``: linear in length for short
        nets, quadratic for long ones — tracking the two-bend router's
        actual evaluation effort, which is what load balancing must
        equalise.
        """
        length = float(self.circuit.wire(wire_index).length_cost())
        return length + length * length / WORK_QUADRATIC_SCALE

    def assign(self) -> Assignment:
        """Assign local wires by leftmost pin; LPT-balance the rest."""
        n = self.circuit.n_wires
        owner = np.full(n, -1, dtype=np.int64)
        loads = [0.0] * self.regions.n_procs
        held: List[tuple] = []

        for w in range(n):
            wire = self.circuit.wire(w)
            cost = self.wire_cost(w)
            if cost < self.threshold_cost:
                pin = wire.leftmost_pin
                proc = self.regions.owner_of(pin.channel, pin.x)
                owner[w] = proc
                loads[proc] += cost
            else:
                held.append((cost, w))

        # LPT: heaviest held wires first, each to the least-loaded processor.
        held.sort(key=lambda item: (-item[0], item[1]))
        heap = [(loads[p], p) for p in range(self.regions.n_procs)]
        heapq.heapify(heap)
        for cost, w in held:
            load, proc = heapq.heappop(heap)
            owner[w] = proc
            heapq.heappush(heap, (load + cost, proc))

        return Assignment(
            owner=owner, n_procs=self.regions.n_procs, method=self.method_name
        )


def fully_local(circuit: Circuit, regions: RegionMap) -> ThresholdCostAssigner:
    """Convenience constructor for the ThresholdCost = infinity extreme."""
    return ThresholdCostAssigner(circuit, regions, math.inf)
