"""Wire (task) assignment policies: round robin, ThresholdCost locality,
and the shared-memory distributed loop, plus load-balance metrics."""

from .base import Assignment, WireAssigner
from .centroid import CentroidAssigner
from .distributed_loop import DistributedLoop
from .metrics import LoadReport, load_report
from .round_robin import RoundRobinAssigner
from .threshold import WORK_QUADRATIC_SCALE, ThresholdCostAssigner, fully_local

__all__ = [
    "Assignment",
    "WireAssigner",
    "RoundRobinAssigner",
    "ThresholdCostAssigner",
    "CentroidAssigner",
    "fully_local",
    "WORK_QUADRATIC_SCALE",
    "DistributedLoop",
    "LoadReport",
    "load_report",
]
