"""Wire-to-processor assignment interface.

A *static* assignment (used by the message passing implementation, and by
the shared memory locality study of Table 5) is simply a vector mapping
each wire index to the processor that will route it.  :class:`Assignment`
wraps that vector with validation and the derived views (per-processor
wire lists in routing order) both simulators consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..circuits.model import Circuit
from ..errors import AssignmentError
from ..grid.regions import RegionMap

__all__ = ["Assignment", "WireAssigner"]


@dataclass(frozen=True)
class Assignment:
    """A static wire -> processor mapping.

    Attributes
    ----------
    owner:
        ``owner[w]`` is the processor routing wire ``w``.
    n_procs:
        Processor count (owners must lie in ``[0, n_procs)``).
    method:
        Human-readable label ("round robin", "ThresholdCost=30", ...).
    """

    owner: np.ndarray
    n_procs: int
    method: str

    def __post_init__(self) -> None:
        if self.owner.ndim != 1:
            raise AssignmentError("owner vector must be one-dimensional")
        if self.owner.size and (
            int(self.owner.min()) < 0 or int(self.owner.max()) >= self.n_procs
        ):
            raise AssignmentError("assignment references an out-of-range processor")

    @property
    def n_wires(self) -> int:
        """Number of wires assigned."""
        return int(self.owner.size)

    def wires_of(self, proc: int) -> np.ndarray:
        """Wire indices assigned to *proc*, in routing order (ascending)."""
        return np.flatnonzero(self.owner == proc)

    def load_counts(self) -> np.ndarray:
        """Wires per processor."""
        return np.bincount(self.owner, minlength=self.n_procs)

    def per_proc_lists(self) -> List[List[int]]:
        """Wire lists per processor (plain ints, for the simulators)."""
        return [self.wires_of(p).tolist() for p in range(self.n_procs)]


class WireAssigner:
    """Base class for static assignment policies.

    Subclasses implement :meth:`assign`; the constructor captures the
    circuit and region geometry every policy needs.
    """

    method_name = "abstract"

    def __init__(self, circuit: Circuit, regions: RegionMap) -> None:
        if regions.n_channels != circuit.n_channels or regions.n_grids != circuit.n_grids:
            raise AssignmentError("region map does not match circuit dimensions")
        self.circuit = circuit
        self.regions = regions

    def assign(self) -> Assignment:
        """Produce the wire -> processor mapping."""
        raise NotImplementedError
