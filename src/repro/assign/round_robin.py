"""Round robin wire assignment — the extreme non-local policy.

Paper §5.3.1: "The extreme non-local case is one which uses round robin
wire assignment."  Wire ``w`` goes to processor ``w mod P``; loads are
balanced to within one wire, but a processor's wires are scattered over
the whole chip, maximising interference and update traffic.
"""

from __future__ import annotations

import numpy as np

from .base import Assignment, WireAssigner

__all__ = ["RoundRobinAssigner"]


class RoundRobinAssigner(WireAssigner):
    """Deal wires out cyclically, ignoring their location entirely."""

    method_name = "round robin"

    def assign(self) -> Assignment:
        """Wire *w* -> processor ``w mod n_procs``."""
        owner = np.arange(self.circuit.n_wires, dtype=np.int64) % self.regions.n_procs
        return Assignment(owner=owner, n_procs=self.regions.n_procs, method=self.method_name)
